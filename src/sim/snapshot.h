// Versioned binary checkpoint of a full in-flight simulation.
//
// A snapshot captures every mutable byte of a run split between
// System::advance_until segments: RNG words, per-core front-end and sleep
// state, the pooled request arena and every queue index, bank/subarray/rank
// timing records, refresh bookkeeping, ROP engine tables, LLC arrays, the
// stat registries (Shewchuk partials verbatim, so exact sums survive), the
// epoch-sampler ring, and the trace-sink ring. Restore is bit-identical: a
// run split at any snapshot boundary executes literally the same
// operations as the unbroken run — Controller::tick is not idempotent, so
// the serialized surface includes the exact loop cursor (cpu_cycle,
// next_window_cpu, mem_next_event, mem_dirty) rather than just "a state at
// cycle N".
//
// File format: "ROPSNAP1" magic (as a little-endian u64), a format version,
// and an FNV-1a fingerprint of the canonical spec string — both sides of a
// save/restore must describe the identical experiment, since all
// config-derived structure (geometry, table sizes, trace profiles) is
// rebuilt from the spec, not the file. Sections, in restore-dependency
// order: shared registry, memory system (controllers + per-channel
// registries), CPU system (loop cursor, cores, shard-pool event clocks
// and counter-fold baselines), ROP engines, workload traces, epoch
// sampler, trace sink.
//
// Writes are atomic (tmp file + rename), so a kill mid-write leaves the
// previous checkpoint intact — what the campaign resume path relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace rop::cpu {
class System;
}
namespace rop::mem {
class MemorySystem;
}
namespace rop::engine {
class RopEngine;
}
namespace rop::workload {
class SyntheticTrace;
}
namespace rop::telemetry {
class EpochSampler;
class TraceSink;
}

namespace rop::sim {

struct ExperimentSpec;

/// Everything a snapshot touches. Engine/trace vectors follow channel /
/// core order; sampler and trace may be null (their presence is
/// config-derived, so both sides of a save/restore agree).
struct SnapshotContext {
  cpu::System* system = nullptr;
  mem::MemorySystem* memory = nullptr;
  std::vector<engine::RopEngine*> engines;
  std::vector<workload::SyntheticTrace*> traces;
  telemetry::EpochSampler* sampler = nullptr;
  telemetry::TraceSink* trace = nullptr;
  StatRegistry* stats = nullptr;
};

/// Canonical text form of a spec: every field that shapes simulation
/// behavior, in a fixed order. Two specs with equal canonical strings
/// produce interchangeable snapshots.
[[nodiscard]] std::string spec_canonical(const ExperimentSpec& spec);

/// FNV-1a 64-bit over the canonical string.
[[nodiscard]] std::uint64_t config_fingerprint(const std::string& canonical);

/// Serialize the full context into a buffer (header included).
[[nodiscard]] std::string save_snapshot_buffer(const SnapshotContext& ctx,
                                               std::uint64_t fingerprint);

/// Restore from a buffer. Returns false (context partially written — the
/// caller must abort the run) on magic/version/fingerprint mismatch or a
/// short/long buffer; `error` gets a one-line reason.
[[nodiscard]] bool load_snapshot_buffer(const std::string& buf,
                                        const SnapshotContext& ctx,
                                        std::uint64_t fingerprint,
                                        std::string* error);

/// Cheap header probe: true when `path` exists, is a ROPSNAP1 file of the
/// current format version, and was written under a spec with this
/// fingerprint. Lets a resuming campaign ignore stale checkpoints from an
/// earlier, different sweep without aborting mid-restore.
[[nodiscard]] bool snapshot_compatible(const std::string& path,
                                       std::uint64_t fingerprint);

/// Atomic file I/O wrappers (tmp + rename on write).
[[nodiscard]] bool write_snapshot_file(const std::string& path,
                                       const SnapshotContext& ctx,
                                       std::uint64_t fingerprint);
[[nodiscard]] bool read_snapshot_file(const std::string& path,
                                      const SnapshotContext& ctx,
                                      std::uint64_t fingerprint,
                                      std::string* error);

}  // namespace rop::sim
