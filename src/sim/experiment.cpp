#include "sim/experiment.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>

#include "check/sim_checker.h"
#include "mem/refresh_stats.h"
#include "sim/parallel_sampling.h"
#include "sim/sim_instance.h"
#include "sim/snapshot.h"
#include "telemetry/attribution.h"
#include "telemetry/stats_json.h"
#include "workload/synthetic.h"

namespace rop::sim {

bool checker_enabled_by_environment() {
  if (const char* env = std::getenv("ROP_CHECK")) {
    return std::strcmp(env, "0") != 0 && env[0] != '\0';
  }
#ifdef ROP_CHECKER_DEFAULT_ON
  return true;
#else
  return false;
#endif
}

double ExperimentResult::weighted_speedup(
    const std::vector<double>& ipc_alone) const {
  ROP_ASSERT(ipc_alone.size() == run.cores.size());
  double ws = 0.0;
  for (std::size_t c = 0; c < run.cores.size(); ++c) {
    ROP_ASSERT(ipc_alone[c] > 0.0);
    ws += run.cores[c].ipc / ipc_alone[c];
  }
  return ws;
}

std::string ExperimentResult::to_json() const {
  std::ostringstream os;
  telemetry::JsonWriter w(os);
  w.begin_object();
  w.key("schema_version");
  w.value(std::uint64_t{4});

  w.key("run");
  w.begin_object();
  w.key("cpu_cycles");
  w.value(run.cpu_cycles);
  w.key("mem_cycles");
  w.value(run.mem_cycles);
  w.key("hit_cycle_limit");
  w.value(run.hit_cycle_limit);
  w.key("wall_seconds");
  w.value(wall_seconds);
  w.key("sim_cycles_per_second");
  w.value(sim_cycles_per_second());
  w.key("cores");
  w.begin_array();
  for (const cpu::CoreResult& c : run.cores) {
    w.begin_object();
    w.key("instructions");
    w.value(c.instructions);
    w.key("cpu_cycles");
    w.value(c.cpu_cycles);
    w.key("ipc");
    w.value(c.ipc);
    w.key("mem_reads");
    w.value(c.mem_reads);
    w.key("mem_writebacks");
    w.value(c.mem_writebacks);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("energy_mj");
  w.begin_object();
  w.key("background");
  w.value(energy.background_mj);
  w.key("act_pre");
  w.value(energy.act_pre_mj);
  w.key("read");
  w.value(energy.read_mj);
  w.key("write");
  w.value(energy.write_mj);
  w.key("refresh");
  w.value(energy.refresh_mj);
  w.key("io");
  w.value(energy.io_mj);
  w.key("sram");
  w.value(energy.sram_mj);
  w.key("total");
  w.value(energy.total_mj());
  w.end_object();

  w.key("rop");
  w.begin_object();
  w.key("sram_hit_rate");
  w.value(sram_hit_rate);
  w.key("lambda");
  w.value(lambda);
  w.key("beta");
  w.value(beta);
  w.key("refreshes");
  w.value(refreshes);
  w.end_object();

  w.key("refresh_blocking");
  w.begin_array();
  for (std::size_t k = 0; k < nonblocking_fraction.size(); ++k) {
    w.begin_object();
    w.key("window_multiple");
    w.value(static_cast<std::uint64_t>(
        mem::RefreshBlockingStats::kExaminedMultiples[k]));
    w.key("nonblocking_fraction");
    w.value(nonblocking_fraction[k]);
    w.key("mean_blocked_per_blocking_refresh");
    w.value(mean_blocked_per_blocking_refresh[k]);
    w.key("max_blocked");
    w.value(max_blocked[k]);
    w.end_object();
  }
  w.end_array();

  // Attribution (schema v3): per-core CPI stacks — a disjoint decomposition
  // of cpu_cycles, categories in telemetry::cpi_category_keys order — plus
  // the controller-side per-request blocked-cycle totals and the ROP
  // revived-cycles credit. cpi_stack values always sum to `cycles`.
  w.key("attribution");
  w.begin_object();
  w.key("cpu_ratio");
  w.value(static_cast<std::uint64_t>(cpu_ratio));
  w.key("cores");
  w.begin_array();
  for (std::size_t i = 0; i < run.cores.size(); ++i) {
    const cpu::CoreResult& c = run.cores[i];
    const std::array<std::uint64_t, telemetry::kCpiCategoryCount> vals = {
        c.retire_cycles,
        c.stall_mlp_cycles,
        c.stall_port_cycles,
        c.stall_mem_queue_cycles,
        c.stall_mem_bank_cycles,
        c.stall_mem_cas_cycles,
        c.stall_mem_bus_cycles,
        c.stall_refresh_rank_cycles,
        c.stall_refresh_bank_cycles,
        c.stall_refresh_subarray_cycles,
        c.stall_refresh_pause_cycles,
        c.stall_rop_sram_cycles,
        c.other_cycles,
    };
    w.begin_object();
    w.key("core");
    w.value(static_cast<std::uint64_t>(i));
    w.key("cycles");
    w.value(c.cpu_cycles);
    w.key("cpi_stack");
    w.begin_object();
    for (std::size_t k = 0; k < vals.size(); ++k) {
      w.key(telemetry::cpi_category_keys()[k]);
      w.value(vals[k]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("rop_recovered_cycles");
  w.value(stats.counter_value("attr.rop_recovered_cycles"));
  w.key("requests");
  w.begin_object();
  w.key("blocked_rank_cycles");
  w.value(stats.counter_value("attr.blocked_rank_cycles"));
  w.key("blocked_bank_cycles");
  w.value(stats.counter_value("attr.blocked_bank_cycles"));
  w.key("blocked_subarray_cycles");
  w.value(stats.counter_value("attr.blocked_subarray_cycles"));
  w.key("blocked_pause_cycles");
  w.value(stats.counter_value("attr.blocked_pause_cycles"));
  w.end_object();
  w.end_object();

  w.key("checker");
  w.begin_object();
  w.key("ticks");
  w.value(checker_ticks);
  w.key("violations");
  w.value(checker_violations);
  w.end_object();

  w.key("interrupted");
  w.value(interrupted);

  w.key("sampling");
  if (sampling.enabled) {
    w.begin_object();
    w.key("windows");
    w.value(sampling.windows);
    w.key("measured_cpu_cycles");
    w.value(sampling.measured_cpu_cycles);
    w.key("functional_cpu_cycles");
    w.value(sampling.functional_cpu_cycles);
    w.key("ci_converged");
    w.value(sampling.ci_converged);
    // Determinism contract (schema v4): every statistical key in this block
    // is byte-identical for any worker count at a fixed placement;
    // "workers" alone is operational metadata (like wall_seconds above).
    w.key("placement");
    w.value(sampling_placement_name(sampling.placement));
    w.key("workers");
    w.value(static_cast<std::uint64_t>(sampling.workers));
    w.key("strata");
    w.value(static_cast<std::uint64_t>(sampling.strata));
    const auto est = [&w](const char* name, const SamplingEstimate& e) {
      w.key(name);
      w.begin_object();
      w.key("mean");
      w.value(e.mean);
      w.key("stderr");
      w.value(e.stderr_);
      w.key("ci95_half");
      w.value(e.ci95_half);
      w.end_object();
    };
    est("ipc", sampling.ipc);
    est("energy_mj_per_mcycle", sampling.energy_mj_per_mcycle);
    est("refresh_blocked_per_mem_cycle",
        sampling.refresh_blocked_per_mem_cycle);
    w.end_object();
  } else {
    w.null();
  }

  telemetry::write_registry_sections(w, stats);
  telemetry::write_epoch_section(w, epochs.get());

  w.key("trace");
  if (trace) {
    w.begin_object();
    w.key("events");
    w.value(static_cast<std::uint64_t>(trace->size()));
    w.key("dropped");
    w.value(trace->dropped());
    w.end_object();
  } else {
    w.null();
  }

  w.end_object();
  os << '\n';
  return os.str();
}

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  ROP_ASSERT(!spec.benchmarks.empty());
  const bool sharded = spec.shard_channels > 0;
  ROP_ASSERT(!(sharded && spec.telemetry.tracing()) &&
             "the trace sink interleaves channels; use the serial loop");
  const bool snap_active = spec.snapshot.any();
  ROP_ASSERT(!(snap_active && spec.sampling.enabled) &&
             "checkpointing a statistically sampled run is not meaningful");
  ROP_ASSERT(!(spec.sampling.enabled && sharded) &&
             "sampled execution runs on the serial loops only");
  ExperimentResult result;

  // Full system assembly lives in build_sim_instance (the parallel-sampling
  // workers build byte-compatible replicas through the same path); the
  // run_experiment extras — trace sink, invariant checkers — compose through
  // its hooks so the registry layout cannot drift between the two.
  // `inst` is declared before `checkers`: ~SimChecker detaches from the
  // memory system, so the checkers must be destroyed while it still lives.
  SimInstance inst;
  std::vector<std::unique_ptr<check::SimChecker>> checkers;
  SimInstanceHooks hooks;
  // Event trace: attach before anything can issue a command so the timeline
  // is complete from cycle 0. The cycle->microsecond scale always follows
  // the resolved memory config, not the spec's placeholder.
  //
  // Checkers: opt-in invariant auditor — per-tick structural checks plus an
  // end-of-run conservation audit; any violation aborts the experiment with
  // a report. Sharded runs get one checker per channel so each shard's
  // ticks audit into shard-owned state. Disabled while a snapshot or
  // sampling is active: the conservation audit counts from attach and
  // cannot span a restore or a functional jump.
  hooks.post_memory = [&](mem::MemorySystem& memory) {
    if (spec.telemetry.tracing()) {
      telemetry::TraceConfig trace_cfg = spec.telemetry.trace;
      trace_cfg.tck_ps = memory.config().timings.tCK_ps;
      result.trace = std::make_shared<telemetry::TraceSink>(trace_cfg);
      memory.set_trace(result.trace.get());
    }
    if ((spec.check || checker_enabled_by_environment()) && !snap_active &&
        !spec.sampling.enabled) {
      if (sharded) {
        for (ChannelId ch = 0; ch < memory.num_channels(); ++ch) {
          checkers.push_back(std::make_unique<check::SimChecker>());
          checkers.back()->attach(memory, ch);
        }
      } else {
        checkers.push_back(std::make_unique<check::SimChecker>());
        checkers.back()->attach(memory);
        if (result.trace) checkers.back()->set_trace(result.trace.get());
      }
    }
  };
  hooks.post_engines =
      [&](std::vector<std::unique_ptr<engine::RopEngine>>& engines) {
        if (checkers.empty()) return;
        if (sharded) {
          // Channel-scoped checkers watch only their channel's engine.
          for (ChannelId ch = 0;
               ch < static_cast<ChannelId>(engines.size()); ++ch) {
            checkers[ch]->watch(*engines[ch]);
          }
        } else {
          for (const auto& eng : engines) checkers.front()->watch(*eng);
        }
      };

  inst = build_sim_instance(spec, &result.stats, hooks);
  mem::MemorySystem& memory = *inst.memory;
  std::vector<std::unique_ptr<engine::RopEngine>>& engines = inst.engines;
  std::vector<std::unique_ptr<workload::SyntheticTrace>>& traces =
      inst.traces;
  cpu::System& system = *inst.system;
  result.cpu_ratio = inst.cpu_ratio;

  // Epoch sampler: constructed after the full system so an empty counter
  // list captures everything the subsystems registered.
  if (spec.telemetry.sampling()) {
    result.epochs = std::make_shared<telemetry::EpochSampler>(
        spec.telemetry.sampler, &result.stats);
    memory.set_sampler(result.epochs.get());
  }

  const bool progress_active =
      !spec.progress_file.empty() && !spec.sampling.enabled;
  const auto wall_start = std::chrono::steady_clock::now();
  if (spec.sampling.enabled && spec.sampling.jobs > 0) {
    // Planned parallel mode: the instance above becomes the functional-only
    // backbone; workers replicate it from the spec. Telemetry sinks hold
    // single-threaded ring state and the backbone never runs a detailed
    // cycle, so planned mode requires them off.
    ROP_ASSERT(!spec.telemetry.tracing() && !spec.telemetry.sampling() &&
               "planned parallel sampling runs without telemetry sinks");
    result.run = run_parallel_sampled(spec, inst, &result.sampling);
  } else if (spec.sampling.enabled) {
    result.run =
        run_sampled(system, memory, spec.sampling, spec.instructions_per_core,
                    spec.max_cpu_cycles, &result.sampling);
  } else if (!snap_active && !progress_active) {
    result.run = system.run(spec.instructions_per_core, spec.max_cpu_cycles);
  } else {
    // Segmented run: checkpoint traffic and/or the progress heartbeat. The
    // restore side re-runs the whole construction above (everything
    // config-derived is rebuilt from the spec), then overwrites the mutable
    // surface from the file. A segment stop is exact (see
    // System::advance_until), so extra heartbeat boundaries never perturb
    // the simulated behavior.
    SnapshotContext ctx;
    ctx.system = &system;
    ctx.memory = &memory;
    ctx.stats = &result.stats;
    for (const auto& eng : engines) ctx.engines.push_back(eng.get());
    for (const auto& tr : traces) ctx.traces.push_back(tr.get());
    ctx.sampler = result.epochs.get();
    ctx.trace = result.trace.get();
    const std::uint64_t fp = config_fingerprint(spec_canonical(spec));

    system.begin_run(spec.instructions_per_core, spec.max_cpu_cycles);
    if (!spec.snapshot.in.empty()) {
      std::string err;
      if (!read_snapshot_file(spec.snapshot.in, ctx, fp, &err)) {
        std::fprintf(stderr, "snapshot restore failed (%s): %s\n",
                     spec.snapshot.in.c_str(), err.c_str());
        ROP_ASSERT(false && "snapshot restore failed");
      }
    }
    const std::uint64_t stop_at = spec.snapshot.stop_at > 0
                                      ? spec.snapshot.stop_at
                                      : spec.max_cpu_cycles;
    std::uint64_t next_snap = 0;
    if (spec.snapshot.every > 0) {
      next_snap =
          (system.cpu_cycle() / spec.snapshot.every + 1) * spec.snapshot.every;
    }
    std::unique_ptr<telemetry::ProgressWriter> progress;
    std::uint64_t beat_every = 0;
    std::uint64_t next_beat = 0;
    const std::uint64_t target_total =
        spec.instructions_per_core * spec.benchmarks.size();
    if (progress_active) {
      progress =
          std::make_unique<telemetry::ProgressWriter>(spec.progress_file);
      beat_every = spec.progress_every > 0 ? spec.progress_every
                                           : std::uint64_t{10'000'000};
      next_beat = system.cpu_cycle() + beat_every;
    }
    const auto emit_beat = [&](bool done) {
      telemetry::ProgressWriter::RunHeartbeat h;
      h.cpu_cycles = system.cpu_cycle();
      h.max_cpu_cycles = spec.max_cpu_cycles;
      for (std::uint32_t c = 0; c < system.num_cores(); ++c) {
        h.instructions += system.core(c).stats().instructions;
      }
      h.target_instructions = target_total;
      h.cores_remaining = system.cores_remaining();
      h.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
      h.mcyc_per_s = h.wall_s > 0.0 ? static_cast<double>(h.cpu_cycles) /
                                          1e6 / h.wall_s
                                    : 0.0;
      if (h.instructions >= target_total) {
        h.eta_s = 0.0;
      } else if (h.instructions > 0) {
        h.eta_s = h.wall_s *
                  static_cast<double>(target_total - h.instructions) /
                  static_cast<double>(h.instructions);
      }
      h.done = done;
      progress->write_run(h);
    };
    for (;;) {
      std::uint64_t stop = stop_at;
      if (next_snap > 0) stop = std::min(stop, next_snap);
      if (next_beat > 0) stop = std::min(stop, next_beat);
      const bool ended = system.advance_until(stop);
      if (next_beat > 0 && (ended || system.cpu_cycle() >= next_beat)) {
        emit_beat(ended);
        while (next_beat <= system.cpu_cycle()) next_beat += beat_every;
      }
      if (ended) break;  // natural end: no checkpoint, the run is complete
      if (spec.snapshot.stop_at > 0 &&
          system.cpu_cycle() >= spec.snapshot.stop_at) {
        ROP_ASSERT(!spec.snapshot.out.empty() &&
                   "snapshot.stop_at requires snapshot.out");
        const bool ok = write_snapshot_file(spec.snapshot.out, ctx, fp);
        ROP_ASSERT(ok && "snapshot write failed");
        result.interrupted = true;
        break;
      }
      if (next_snap > 0 && system.cpu_cycle() >= next_snap) {
        if (!spec.snapshot.out.empty()) {
          const bool ok = write_snapshot_file(spec.snapshot.out, ctx, fp);
          ROP_ASSERT(ok && "snapshot write failed");
        }
        while (next_snap <= system.cpu_cycle()) {
          next_snap += spec.snapshot.every;
        }
      }
    }
    result.run = system.finish_run();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // CPI-stack exactness (invariant family (e)): the frozen per-core stacks
  // must sum bit-exactly to the frozen cycles.
  if (!checkers.empty()) {
    for (std::size_t c = 0; c < result.run.cores.size(); ++c) {
      const cpu::CoreResult& r = result.run.cores[c];
      checkers.front()->audit_cpi(static_cast<std::uint32_t>(c),
                                  r.cpu_cycles, r.cpi_stack_sum());
    }
  }

  for (const auto& checker : checkers) {
    checker->finalize();
    result.checker_ticks += checker->ticks_checked();
    result.checker_violations += checker->violation_count();
    if (!checker->ok()) {
      std::fprintf(stderr, "%s\n", checker->summary().c_str());
      ROP_ASSERT(false && "SimChecker found invariant violations");
    }
  }

  // Energy: DRAM per channel + the SRAM buffer when ROP is active.
  const energy::DramPowerModel power(energy::DramEnergyParams{},
                                     memory.config().timings);
  for (ChannelId ch = 0; ch < memory.num_channels(); ++ch) {
    const energy::EnergyBreakdown e =
        power.compute(memory.controller(ch).channel());
    result.energy.background_mj += e.background_mj;
    result.energy.act_pre_mj += e.act_pre_mj;
    result.energy.read_mj += e.read_mj;
    result.energy.write_mj += e.write_mj;
    result.energy.refresh_mj += e.refresh_mj;
    result.energy.io_mj += e.io_mj;
  }
  if (!engines.empty()) {
    const auto sram =
        energy::SramEnergyParams::for_capacity(spec.rop.buffer_lines);
    const double tck =
        static_cast<double>(memory.config().timings.tCK_ps) * 1e-12;
    for (const auto& eng : engines) {
      const auto& bs = eng->buffer().stats();
      const double on_s =
          static_cast<double>(eng->sram_on_cycles()) * tck;
      result.energy.sram_mj +=
          sram.energy_mj(bs.lookups + bs.fills, on_s);
    }
    // Paper §V-B3 hit-rate metric: the engines track hits/opportunities
    // directly (a queued read may first miss and later be served once its
    // fill lands, so raw hit/miss counters would double-count it).
    double rate_sum = 0.0;
    for (const auto& eng : engines) rate_sum += eng->overall_hit_rate();
    result.sram_hit_rate = rate_sum / static_cast<double>(engines.size());
    result.lambda = engines.front()->lambda();
    result.beta = engines.front()->beta();
  }

  // Refresh blocking statistics, merged over channels.
  result.refreshes = 0;
  const std::size_t num_windows =
      mem::RefreshBlockingStats::kExaminedMultiples.size();
  result.nonblocking_fraction.assign(num_windows, 0.0);
  result.mean_blocked_per_blocking_refresh.assign(num_windows, 0.0);
  result.max_blocked.assign(num_windows, 0);
  for (ChannelId ch = 0; ch < memory.num_channels(); ++ch) {
    const auto& bs = memory.controller(ch).blocking_stats();
    result.refreshes += bs.total_refreshes();
    for (std::size_t k = 0; k < num_windows; ++k) {
      // Single channel in all presets; for multi-channel this is a simple
      // average rather than a weighted merge.
      result.nonblocking_fraction[k] += bs.non_blocking_fraction(k);
      result.mean_blocked_per_blocking_refresh[k] +=
          bs.mean_blocked_per_blocking_refresh(k);
      result.max_blocked[k] =
          std::max(result.max_blocked[k], bs.max_blocked(k));
    }
  }
  if (memory.num_channels() > 1) {
    for (std::size_t k = 0; k < num_windows; ++k) {
      result.nonblocking_fraction[k] /= memory.num_channels();
      result.mean_blocked_per_blocking_refresh[k] /= memory.num_channels();
    }
  }

  return result;
}

unsigned experiment_worker_width(const ExperimentSpec& spec) {
  unsigned width = 1;
  if (spec.shard_channels > 0) {
    width = std::max(width, std::min(spec.shard_channels, spec.channels));
  }
  if (spec.sampling.enabled && spec.sampling.jobs > 0) {
    width = std::max(width, spec.sampling.jobs);
  }
  return width;
}

ExperimentSpec single_core_spec(std::string benchmark, MemoryMode mode,
                                std::uint64_t llc_bytes) {
  ExperimentSpec spec;
  spec.benchmarks = {std::move(benchmark)};
  spec.mode = mode;
  spec.ranks = 1;
  spec.llc_bytes = llc_bytes;
  return spec;
}

ExperimentSpec multi_core_spec(std::uint32_t wl, MemoryMode mode,
                               bool rank_partition,
                               std::uint64_t llc_bytes) {
  ExperimentSpec spec;
  spec.benchmarks = workload::workload_mix(wl);
  spec.mode = mode;
  spec.ranks = 4;
  spec.rank_partition = rank_partition;
  spec.llc_bytes = llc_bytes;
  return spec;
}

}  // namespace rop::sim
