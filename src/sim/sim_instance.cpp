#include "sim/sim_instance.h"

#include "sim/presets.h"
#include "workload/spec_profiles.h"

namespace rop::sim {

SimInstance build_sim_instance(const ExperimentSpec& spec,
                               StatRegistry* external_stats,
                               const SimInstanceHooks& hooks) {
  ROP_ASSERT(!spec.benchmarks.empty());
  const bool sharded = spec.shard_channels > 0;

  SimInstance inst;
  if (external_stats != nullptr) {
    inst.registry = external_stats;
  } else {
    inst.owned_stats = std::make_unique<StatRegistry>();
    inst.registry = inst.owned_stats.get();
  }

  mem::MemoryConfig mem_cfg = make_memory_config(
      spec.ranks, spec.mode, spec.refresh_mode, spec.channels);
  mem_cfg.per_channel_stats = sharded;
  inst.memory = std::make_unique<mem::MemorySystem>(mem_cfg, inst.registry);

  if (hooks.post_memory) hooks.post_memory(*inst.memory);

  // ROP engines attach one per channel and live for the whole run. Each
  // records into its channel's registry (the shared one when not sharded).
  if (spec.mode == MemoryMode::kRop) {
    for (ChannelId ch = 0; ch < inst.memory->num_channels(); ++ch) {
      engine::RopConfig rop_cfg = spec.rop;
      rop_cfg.seed ^= spec.seed_salt * 0x9e3779b97f4a7c15ULL + ch;
      inst.engines.push_back(std::make_unique<engine::RopEngine>(
          rop_cfg, inst.memory->controller(ch), inst.memory->address_map(),
          &inst.memory->channel_stats(ch)));
    }
  }

  if (hooks.post_engines) hooks.post_engines(inst.engines);

  // All channel-side registrations are done; publish the names into the
  // shared registry so samplers resolve handles for them.
  if (sharded) inst.memory->mirror_channel_stats();

  std::vector<workload::TraceSource*> trace_ptrs;
  for (std::size_t c = 0; c < spec.benchmarks.size(); ++c) {
    inst.traces.push_back(std::make_unique<workload::SyntheticTrace>(
        workload::spec_profile(spec.benchmarks[c], spec.seed_salt + c)));
    trace_ptrs.push_back(inst.traces.back().get());
  }

  cpu::SystemConfig sys_cfg =
      make_system_config(spec.llc_bytes, spec.rank_partition);
  sys_cfg.loop = spec.loop;
  sys_cfg.shard_channels = spec.shard_channels;
  inst.cpu_ratio = sys_cfg.cpu_ratio;
  inst.system =
      std::make_unique<cpu::System>(sys_cfg, *inst.memory, trace_ptrs);
  return inst;
}

}  // namespace rop::sim
