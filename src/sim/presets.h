// Canned system configurations from the paper's Table III.
#pragma once

#include <cstdint>

#include "cpu/system.h"
#include "dram/timing.h"
#include "mem/memory_system.h"
#include "rop/rop_engine.h"

namespace rop::sim {

/// Which memory system variant to run. The first three are the paper's
/// §V-A comparison set; the rest are the related-work refresh schemes
/// (§VI) and the finer-granularity mode of §VII, implemented here as
/// additional baselines.
enum class MemoryMode : std::uint8_t {
  kBaseline,   // auto-refresh, refresh issued the moment it is due
  kNoRefresh,  // idealized memory without refresh (upper bound)
  kRop,        // auto-refresh + ROP engine (drain + prefetch + SRAM buffer)
  kElastic,    // Elastic Refresh (Stuecheli et al., MICRO'10)
  kPausing,    // Refresh Pausing (Nair et al., HPCA'13)
  kPerBank,    // per-bank refresh (REFpb), 8x cadence at tRFCpb per bank
};

/// DDR4-1600, `channels` channels of `ranks` ranks of 8 banks (Table III
/// is the 1-channel point; multi-channel extends it for the sharded loop
/// and the campaign sweeps).
[[nodiscard]] mem::MemoryConfig make_memory_config(
    std::uint32_t ranks, MemoryMode mode,
    dram::RefreshMode refresh_mode = dram::RefreshMode::k1x,
    std::uint32_t channels = 1);

/// Out-of-order-approximation cores at 4x the controller clock with an LLC
/// of `llc_bytes` (2 MB single-core / 4 MB 4-core in the paper).
[[nodiscard]] cpu::SystemConfig make_system_config(std::uint64_t llc_bytes,
                                                   bool rank_partition);

}  // namespace rop::sim
