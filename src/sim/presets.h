// Canned system configurations from the paper's Table III, plus the single
// authoritative scheme-name and refresh-mode parsers shared by the ropsim
// CLI and the campaign-spec loader (so names cannot drift between them).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "cpu/system.h"
#include "dram/timing.h"
#include "mem/memory_system.h"
#include "rop/rop_engine.h"

namespace rop::sim {

/// Which memory system variant to run. The first three are the paper's
/// §V-A comparison set; the rest are the related-work refresh schemes
/// (§VI), the finer-granularity mode of §VII, and the refresh–access
/// parallelism competitors (DARP/SARP, Chang et al. HPCA'14; HiRA,
/// Yaglikci et al. MICRO'22), implemented here as additional baselines.
enum class MemoryMode : std::uint8_t {
  kBaseline,   // auto-refresh, refresh issued the moment it is due
  kNoRefresh,  // idealized memory without refresh (upper bound)
  kRop,        // auto-refresh + ROP engine (drain + prefetch + SRAM buffer)
  kElastic,    // Elastic Refresh (Stuecheli et al., MICRO'10)
  kPausing,    // Refresh Pausing (Nair et al., HPCA'13)
  kPerBank,    // per-bank refresh (REFpb), 8x cadence at tRFCpb per bank
  kDarp,       // DARP: out-of-order REFpb into idle-bank/write-drain windows
  kSarp,       // SARP: refresh one subarray while the rest of the bank serves
  kHira,       // HiRA-style refresh/activation overlap within a bank
};

/// Every mode, in canonical (display) order. New schemes must be added here
/// so the comparison bench, --compare, and the round-trip tests pick them
/// up automatically.
inline constexpr std::array<MemoryMode, 9> kAllMemoryModes = {
    MemoryMode::kBaseline, MemoryMode::kNoRefresh, MemoryMode::kRop,
    MemoryMode::kElastic,  MemoryMode::kPausing,   MemoryMode::kPerBank,
    MemoryMode::kDarp,     MemoryMode::kSarp,      MemoryMode::kHira,
};

/// Canonical (hyphenated, CLI-facing) name of a mode: "baseline",
/// "no-refresh", "rop", "elastic", "pausing", "per-bank", "darp", "sarp",
/// "hira".
[[nodiscard]] const char* memory_mode_name(MemoryMode mode);

/// Parse a scheme name. Accepts the canonical names plus the compact
/// aliases historically used in campaign specs ("norefresh", "perbank").
/// Returns nullopt for unknown names.
[[nodiscard]] std::optional<MemoryMode> parse_memory_mode(
    std::string_view name);

/// Canonical name of a fine-grained refresh mode: "1x" / "2x" / "4x".
[[nodiscard]] const char* refresh_mode_name(dram::RefreshMode mode);

/// Parse a refresh-mode name ("1x" | "2x" | "4x"); nullopt otherwise.
[[nodiscard]] std::optional<dram::RefreshMode> parse_refresh_mode(
    std::string_view name);

/// DDR4-1600, `channels` channels of `ranks` ranks of 8 banks (Table III
/// is the 1-channel point; multi-channel extends it for the sharded loop
/// and the campaign sweeps).
[[nodiscard]] mem::MemoryConfig make_memory_config(
    std::uint32_t ranks, MemoryMode mode,
    dram::RefreshMode refresh_mode = dram::RefreshMode::k1x,
    std::uint32_t channels = 1);

/// Out-of-order-approximation cores at 4x the controller clock with an LLC
/// of `llc_bytes` (2 MB single-core / 4 MB 4-core in the paper).
[[nodiscard]] cpu::SystemConfig make_system_config(std::uint64_t llc_bytes,
                                                   bool rank_partition);

}  // namespace rop::sim
