#include "sim/presets.h"

namespace rop::sim {

mem::MemoryConfig make_memory_config(std::uint32_t ranks, MemoryMode mode,
                                     dram::RefreshMode refresh_mode,
                                     std::uint32_t channels) {
  mem::MemoryConfig cfg;
  cfg.timings = dram::make_ddr4_1600_timings(refresh_mode);
  cfg.org.channels = channels;
  cfg.org.ranks = ranks;
  cfg.org.banks = 8;
    // Page-interleaved: a stream resides in one bank for a whole row (128
  // lines), so concurrent streams separate into different banks and each
  // per-bank prediction-table entry sees a clean single-stream delta trail
  // (the "bank locality" the paper's table organization relies on, §IV-C).
  cfg.scheme = mem::MapScheme::kRowRankBankColumn;
  cfg.ctrl.refresh_enabled = mode != MemoryMode::kNoRefresh;
  switch (mode) {
    case MemoryMode::kRop:
      cfg.ctrl.policy = mem::RefreshPolicy::kRopDrain;
      break;
    case MemoryMode::kElastic:
      cfg.ctrl.policy = mem::RefreshPolicy::kElastic;
      break;
    case MemoryMode::kPausing:
      cfg.ctrl.policy = mem::RefreshPolicy::kPausing;
      break;
    case MemoryMode::kPerBank:
      cfg.ctrl.per_bank_refresh = true;
      break;
    case MemoryMode::kBaseline:
    case MemoryMode::kNoRefresh:
      break;
  }
  return cfg;
}

cpu::SystemConfig make_system_config(std::uint64_t llc_bytes,
                                     bool rank_partition) {
  cpu::SystemConfig cfg;
  cfg.cpu_ratio = 4;  // 3.2 GHz cores / 800 MHz controller
  cfg.core.issue_width = 4;
  cfg.core.max_outstanding = 16;
  cfg.llc.size_bytes = llc_bytes;
  cfg.llc.associativity = 16;
  cfg.shared_llc = true;
  cfg.rank_partition = rank_partition;
  return cfg;
}

}  // namespace rop::sim
