#include "sim/presets.h"

namespace rop::sim {

const char* memory_mode_name(MemoryMode mode) {
  switch (mode) {
    case MemoryMode::kBaseline: return "baseline";
    case MemoryMode::kNoRefresh: return "no-refresh";
    case MemoryMode::kRop: return "rop";
    case MemoryMode::kElastic: return "elastic";
    case MemoryMode::kPausing: return "pausing";
    case MemoryMode::kPerBank: return "per-bank";
    case MemoryMode::kDarp: return "darp";
    case MemoryMode::kSarp: return "sarp";
    case MemoryMode::kHira: return "hira";
  }
  return "?";
}

std::optional<MemoryMode> parse_memory_mode(std::string_view name) {
  for (const MemoryMode mode : kAllMemoryModes) {
    if (name == memory_mode_name(mode)) return mode;
  }
  // Compact aliases used by existing campaign specs and stats keys.
  if (name == "norefresh") return MemoryMode::kNoRefresh;
  if (name == "perbank") return MemoryMode::kPerBank;
  return std::nullopt;
}

const char* refresh_mode_name(dram::RefreshMode mode) {
  switch (mode) {
    case dram::RefreshMode::k1x: return "1x";
    case dram::RefreshMode::k2x: return "2x";
    case dram::RefreshMode::k4x: return "4x";
  }
  return "?";
}

std::optional<dram::RefreshMode> parse_refresh_mode(std::string_view name) {
  if (name == "1x") return dram::RefreshMode::k1x;
  if (name == "2x") return dram::RefreshMode::k2x;
  if (name == "4x") return dram::RefreshMode::k4x;
  return std::nullopt;
}

mem::MemoryConfig make_memory_config(std::uint32_t ranks, MemoryMode mode,
                                     dram::RefreshMode refresh_mode,
                                     std::uint32_t channels) {
  mem::MemoryConfig cfg;
  cfg.timings = dram::make_ddr4_1600_timings(refresh_mode);
  cfg.org.channels = channels;
  cfg.org.ranks = ranks;
  cfg.org.banks = 8;
    // Page-interleaved: a stream resides in one bank for a whole row (128
  // lines), so concurrent streams separate into different banks and each
  // per-bank prediction-table entry sees a clean single-stream delta trail
  // (the "bank locality" the paper's table organization relies on, §IV-C).
  cfg.scheme = mem::MapScheme::kRowRankBankColumn;
  cfg.ctrl.refresh_enabled = mode != MemoryMode::kNoRefresh;
  switch (mode) {
    case MemoryMode::kRop:
      cfg.ctrl.policy = mem::RefreshPolicy::kRopDrain;
      break;
    case MemoryMode::kElastic:
      cfg.ctrl.policy = mem::RefreshPolicy::kElastic;
      break;
    case MemoryMode::kPausing:
      cfg.ctrl.policy = mem::RefreshPolicy::kPausing;
      break;
    case MemoryMode::kPerBank:
      cfg.ctrl.per_bank_refresh = true;
      break;
    case MemoryMode::kDarp:
      cfg.ctrl.policy = mem::RefreshPolicy::kDarp;
      break;
    case MemoryMode::kSarp:
      cfg.ctrl.policy = mem::RefreshPolicy::kSarp;
      // 8 subarrays per bank — the mat grouping Chang et al. evaluate; a
      // REFpb locks 1/8th of the bank's rows instead of the whole bank.
      cfg.org.subarrays = 8;
      break;
    case MemoryMode::kHira:
      cfg.ctrl.policy = mem::RefreshPolicy::kHira;
      cfg.org.subarrays = 8;
      break;
    case MemoryMode::kBaseline:
    case MemoryMode::kNoRefresh:
      break;
  }
  return cfg;
}

cpu::SystemConfig make_system_config(std::uint64_t llc_bytes,
                                     bool rank_partition) {
  cpu::SystemConfig cfg;
  cfg.cpu_ratio = 4;  // 3.2 GHz cores / 800 MHz controller
  cfg.core.issue_width = 4;
  cfg.core.max_outstanding = 16;
  cfg.llc.size_bytes = llc_bytes;
  cfg.llc.associativity = 16;
  cfg.shared_llc = true;
  cfg.rank_partition = rank_partition;
  return cfg;
}

}  // namespace rop::sim
