// SMARTS-style statistical sampling (Wunderlich et al., ISCA'03 adapted to
// this simulator): alternate short *detailed* measurement windows with long
// *functional-warming* fast-forward windows, and report each metric as a
// mean with a standard error and a 95% confidence interval instead of an
// exact total.
//
// A sampling unit is one detailed window: after `warmup_cycles` of detailed
// execution (excluded — it re-fills queues, row buffers, and the MLP window
// after the functional jump), `detail_cycles` of exact event-driven
// execution are measured. Between units, Core::functional_advance +
// System::functional_window fast-forward `functional_instructions` per
// core: trace streams advance, LLCs stay warm, the criticality RNG keeps
// its draw order, refreshes fire at their natural times — but no demand
// request is simulated cycle-accurately, which is where the speedup comes
// from (the detailed fraction of the run is detail/(detail + functional)).
//
// Per-window observations:
//   * IPC: aggregate retired instructions / CPU cycles,
//   * energy rate: settled DRAM energy per million memory cycles
//     (Rank accounting is piecewise — settle_accounting at window edges),
//   * refresh-blocked rate: mem.refresh_blocked_cycles per memory cycle.
// The estimator treats windows as i.i.d. draws: mean, stderr = s/sqrt(n),
// and a 95% CI using Student-t quantiles for n < 30 (1.96 beyond). An
// optional target on the relative CI half-width stops the run early once
// the estimate is tight enough (`min_windows` guards the t-tail).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "cpu/system.h"
#include "energy/dram_power.h"
#include "mem/memory_system.h"

namespace rop::sim {

struct SamplingSpec {
  bool enabled = false;
  /// Detailed-but-unmeasured cycles after each functional jump. Tuned so
  /// the post-jump transient (empty queues, closed rows) is fully absorbed
  /// before measurement on every SPEC-like profile.
  std::uint64_t warmup_cycles = 40'000;
  /// Measured detailed cycles per window.
  std::uint64_t detail_cycles = 40'000;
  /// Instructions fast-forwarded per core between windows. Larger jumps
  /// raise the speedup but thin the window count; at long horizons the
  /// real win comes from `target_ci_frac` stopping the run outright.
  std::uint64_t functional_instructions = 100'000;
  /// CPU-cycle charge per critical demand-read miss during warming
  /// (a loaded-latency stand-in for the memory the fast-forward skips).
  Cycle critical_penalty = 160;
  /// CI machinery: never auto-stop before `min_windows` observations;
  /// `max_windows` > 0 hard-caps the window count; `target_ci_frac` > 0
  /// stops once ci95_half / mean <= target for IPC.
  std::uint32_t min_windows = 8;
  std::uint32_t max_windows = 0;
  double target_ci_frac = 0.0;
  /// Parallel planned mode (sim/parallel_sampling.h). 0 keeps the legacy
  /// chained loop above; >= 1 plans window placement on a functional-only
  /// backbone and dispatches each window to a pool of `jobs` workers. The
  /// observation set is identical for every jobs >= 1 at a fixed placement.
  std::uint32_t jobs = 0;
  /// Stratified placement (planned mode only): > 0 splits the instruction
  /// horizon into `strata` equal slices, allocates windows to each slice in
  /// proportion to its observed memory traffic (LLC misses during the
  /// functional pass), and combines per-stratum means with Neyman-style
  /// cycle-share weights. 0 keeps uniform placement.
  std::uint32_t strata = 0;
};

/// One metric's sampled estimate.
struct SamplingEstimate {
  double mean = 0.0;
  double stderr_ = 0.0;    // s / sqrt(n)
  double ci95_half = 0.0;  // t_{0.975, n-1} * stderr
};

/// How measurement windows were placed along the run.
enum class SamplingPlacement : std::uint8_t {
  kChained,     // legacy loop: windows chained inline with the warming
  kUniform,     // planned mode, evenly spaced windows
  kStratified,  // planned mode, traffic-proportional per-stratum allocation
};

[[nodiscard]] const char* sampling_placement_name(SamplingPlacement p);

/// One measured window's raw observation. The full vector is kept on the
/// summary (not emitted to JSON) so determinism tests can compare the
/// exact per-window values across worker counts and against the legacy
/// chained loop.
struct WindowObservation {
  std::uint64_t index = 0;    // placement ordinal (merge order)
  std::uint32_t stratum = 0;  // 0 when placement is not stratified
  std::uint64_t cpu_cycles = 0;
  double ipc = 0.0;
  double energy_mj_per_mcycle = 0.0;
  double refresh_blocked_per_mem_cycle = 0.0;
};

struct SamplingSummary {
  bool enabled = false;
  std::uint64_t windows = 0;  // measured windows (observations)
  std::uint64_t measured_cpu_cycles = 0;
  std::uint64_t functional_cpu_cycles = 0;
  bool ci_converged = false;  // target_ci_frac was set and reached
  SamplingPlacement placement = SamplingPlacement::kChained;
  /// Worker threads that executed the windows (operational, like
  /// wall_seconds: every statistical field above/below is identical for any
  /// worker count at a fixed placement — that is the determinism contract).
  std::uint32_t workers = 0;
  std::uint32_t strata = 0;
  SamplingEstimate ipc;
  SamplingEstimate energy_mj_per_mcycle;          // mJ per 1e6 mem cycles
  SamplingEstimate refresh_blocked_per_mem_cycle;
  /// Per-window raw observations in placement order (all modes).
  std::vector<WindowObservation> observations;
};

/// Two-sided 95% Student-t quantile for `df` degrees of freedom (exact
/// table below 30, 1.96 beyond).
[[nodiscard]] double t_quantile_975(std::uint64_t df);

/// Mean / stderr / CI of a set of observations (empty -> zeros).
[[nodiscard]] SamplingEstimate estimate_from(
    const std::vector<double>& observations);

/// Stratified estimator: observation i belongs to stratum `stratum_of[i]`,
/// stratum h carries weight `stratum_weight[h]` (its estimated share of the
/// run — cycle estimates from the functional pass). Mean is the
/// weight-combined per-stratum mean; the variance follows the standard
/// stratified form Var = sum_h (W_h/W)^2 s_h^2 / n_h over strata with at
/// least two observations, with df = sum_h (n_h - 1). Strata with zero
/// observations drop out (weights renormalized over the covered strata).
/// Falls back to estimate_from when every observation lands in one stratum.
[[nodiscard]] SamplingEstimate stratified_estimate(
    const std::vector<double>& observations,
    const std::vector<std::uint32_t>& stratum_of,
    const std::vector<double>& stratum_weight);

/// Settle every rank's accounting to memory cycle `now` and total the DRAM
/// energy across channels (piecewise-safe; used at measured-window edges by
/// both the chained loop and the parallel-sampling workers).
[[nodiscard]] double sampled_window_energy_mj(
    mem::MemorySystem& memory, const energy::DramPowerModel& power,
    Cycle now);

/// Drive `system` (already constructed, not yet begun) through a sampled
/// run: begin_run, alternate measured and functional windows until every
/// core crosses `target_instructions` (or the CI target / window cap /
/// cycle limit hits), finish_run. Serial loops only. Fills `out` when
/// non-null.
[[nodiscard]] cpu::RunResult run_sampled(cpu::System& system,
                                         mem::MemorySystem& memory,
                                         const SamplingSpec& spec,
                                         std::uint64_t target_instructions,
                                         std::uint64_t max_cpu_cycles,
                                         SamplingSummary* out);

}  // namespace rop::sim
