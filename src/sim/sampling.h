// SMARTS-style statistical sampling (Wunderlich et al., ISCA'03 adapted to
// this simulator): alternate short *detailed* measurement windows with long
// *functional-warming* fast-forward windows, and report each metric as a
// mean with a standard error and a 95% confidence interval instead of an
// exact total.
//
// A sampling unit is one detailed window: after `warmup_cycles` of detailed
// execution (excluded — it re-fills queues, row buffers, and the MLP window
// after the functional jump), `detail_cycles` of exact event-driven
// execution are measured. Between units, Core::functional_advance +
// System::functional_window fast-forward `functional_instructions` per
// core: trace streams advance, LLCs stay warm, the criticality RNG keeps
// its draw order, refreshes fire at their natural times — but no demand
// request is simulated cycle-accurately, which is where the speedup comes
// from (the detailed fraction of the run is detail/(detail + functional)).
//
// Per-window observations:
//   * IPC: aggregate retired instructions / CPU cycles,
//   * energy rate: settled DRAM energy per million memory cycles
//     (Rank accounting is piecewise — settle_accounting at window edges),
//   * refresh-blocked rate: mem.refresh_blocked_cycles per memory cycle.
// The estimator treats windows as i.i.d. draws: mean, stderr = s/sqrt(n),
// and a 95% CI using Student-t quantiles for n < 30 (1.96 beyond). An
// optional target on the relative CI half-width stops the run early once
// the estimate is tight enough (`min_windows` guards the t-tail).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "cpu/system.h"
#include "mem/memory_system.h"

namespace rop::sim {

struct SamplingSpec {
  bool enabled = false;
  /// Detailed-but-unmeasured cycles after each functional jump. Tuned so
  /// the post-jump transient (empty queues, closed rows) is fully absorbed
  /// before measurement on every SPEC-like profile.
  std::uint64_t warmup_cycles = 40'000;
  /// Measured detailed cycles per window.
  std::uint64_t detail_cycles = 40'000;
  /// Instructions fast-forwarded per core between windows. Larger jumps
  /// raise the speedup but thin the window count; at long horizons the
  /// real win comes from `target_ci_frac` stopping the run outright.
  std::uint64_t functional_instructions = 100'000;
  /// CPU-cycle charge per critical demand-read miss during warming
  /// (a loaded-latency stand-in for the memory the fast-forward skips).
  Cycle critical_penalty = 160;
  /// CI machinery: never auto-stop before `min_windows` observations;
  /// `max_windows` > 0 hard-caps the window count; `target_ci_frac` > 0
  /// stops once ci95_half / mean <= target for IPC.
  std::uint32_t min_windows = 8;
  std::uint32_t max_windows = 0;
  double target_ci_frac = 0.0;
};

/// One metric's sampled estimate.
struct SamplingEstimate {
  double mean = 0.0;
  double stderr_ = 0.0;    // s / sqrt(n)
  double ci95_half = 0.0;  // t_{0.975, n-1} * stderr
};

struct SamplingSummary {
  bool enabled = false;
  std::uint64_t windows = 0;  // measured windows (observations)
  std::uint64_t measured_cpu_cycles = 0;
  std::uint64_t functional_cpu_cycles = 0;
  bool ci_converged = false;  // target_ci_frac was set and reached
  SamplingEstimate ipc;
  SamplingEstimate energy_mj_per_mcycle;          // mJ per 1e6 mem cycles
  SamplingEstimate refresh_blocked_per_mem_cycle;
};

/// Two-sided 95% Student-t quantile for `df` degrees of freedom (exact
/// table below 30, 1.96 beyond).
[[nodiscard]] double t_quantile_975(std::uint64_t df);

/// Mean / stderr / CI of a set of observations (empty -> zeros).
[[nodiscard]] SamplingEstimate estimate_from(
    const std::vector<double>& observations);

/// Drive `system` (already constructed, not yet begun) through a sampled
/// run: begin_run, alternate measured and functional windows until every
/// core crosses `target_instructions` (or the CI target / window cap /
/// cycle limit hits), finish_run. Serial loops only. Fills `out` when
/// non-null.
[[nodiscard]] cpu::RunResult run_sampled(cpu::System& system,
                                         mem::MemorySystem& memory,
                                         const SamplingSpec& spec,
                                         std::uint64_t target_instructions,
                                         std::uint64_t max_cpu_cycles,
                                         SamplingSummary* out);

}  // namespace rop::sim
