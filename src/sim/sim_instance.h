// One fully constructed simulator for an ExperimentSpec, factored out of
// run_experiment so other drivers can build byte-compatible replicas.
//
// The parallel-sampling worker pool is the motivating consumer: each worker
// needs its own memory system, engines, traces, and CPU system whose stat
// registry and serialization layout are *identical* to the planner's, so an
// in-memory snapshot saved on one instance restores onto another. That
// compatibility hinges on construction order — every registry registration
// (memory system, then engines, then the CPU system's per-core mirrors)
// must happen in the same sequence on both sides. build_sim_instance is the
// single place that order lives; run_experiment composes its extras (trace
// sink, invariant checkers) through the hooks so it cannot drift.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "cpu/system.h"
#include "mem/memory_system.h"
#include "rop/rop_engine.h"
#include "sim/experiment.h"
#include "sim/snapshot.h"
#include "workload/synthetic.h"

namespace rop::sim {

struct SimInstance {
  /// Owned registry when build_sim_instance was not handed an external one;
  /// `registry` points at whichever is live.
  std::unique_ptr<StatRegistry> owned_stats;
  StatRegistry* registry = nullptr;
  std::unique_ptr<mem::MemorySystem> memory;
  std::vector<std::unique_ptr<engine::RopEngine>> engines;
  std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
  std::unique_ptr<cpu::System> system;
  std::uint32_t cpu_ratio = 0;

  /// Snapshot surface of this instance (sampler and trace sink stay null —
  /// instances built here never attach them).
  [[nodiscard]] SnapshotContext snapshot_context() {
    SnapshotContext ctx;
    ctx.system = system.get();
    ctx.memory = memory.get();
    for (const auto& e : engines) ctx.engines.push_back(e.get());
    for (const auto& t : traces) ctx.traces.push_back(t.get());
    ctx.stats = registry;
    return ctx;
  }
};

/// Optional composition points for run_experiment's extras. Both run before
/// any simulation; neither may register stats (registry layout must match
/// across instances built from the same spec with different hooks only when
/// the hooks are registration-free — the trace sink and checkers are).
struct SimInstanceHooks {
  /// After the memory system exists, before the ROP engines (run_experiment
  /// attaches the trace sink and the per-channel checkers here).
  std::function<void(mem::MemorySystem&)> post_memory;
  /// After the engines exist (checker watch hooks).
  std::function<void(std::vector<std::unique_ptr<engine::RopEngine>>&)>
      post_engines;
};

/// Build the full simulator for `spec` in the canonical registration order:
/// memory system -> [hooks.post_memory] -> ROP engines ->
/// [hooks.post_engines] -> channel-stat mirror (sharded only) -> traces ->
/// CPU system. `external_stats` non-null routes every registration into the
/// caller's registry (run_experiment's result.stats); null gives the
/// instance its own.
[[nodiscard]] SimInstance build_sim_instance(
    const ExperimentSpec& spec, StatRegistry* external_stats = nullptr,
    const SimInstanceHooks& hooks = {});

}  // namespace rop::sim
