#include "sim/runner.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "sim/worker_budget.h"

namespace rop::sim {

std::vector<ExperimentResult> run_experiments(
    const std::vector<ExperimentSpec>& specs, unsigned n_threads) {
  std::vector<ExperimentResult> results(specs.size());
  if (specs.empty()) return results;

  // Budget the pool against nested parallelism: a spec that runs the
  // channel-sharded loop brings its own shard workers, and a
  // planned-sampled spec brings its own window workers, so the default
  // (n_threads == 0) divides hardware_concurrency by the widest spec.
  unsigned max_width = 1;
  for (const ExperimentSpec& spec : specs) {
    max_width = std::max(max_width, experiment_worker_width(spec));
  }
  n_threads = worker_budget(n_threads, max_width, specs.size());

  // Each worker claims the next unstarted spec and writes its pre-sized
  // result slot; no other state is shared, so scheduling order cannot
  // affect the output.
  std::atomic<std::size_t> next{0};
  const auto worker = [&specs, &results, &next] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      results[i] = run_experiment(specs[i]);
    }
  };

  if (n_threads == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace rop::sim
