#include "sim/parallel_sampling.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "energy/dram_power.h"
#include "sim/snapshot.h"

namespace rop::sim {

namespace {

/// One planned window: the placement ordinal (merge order), its stratum,
/// and the full simulator state at the window start.
struct WindowJob {
  std::uint64_t ordinal = 0;
  std::uint32_t stratum = 0;
  std::string snapshot;
};

/// Completion slot for one ordinal. `completed` flips exactly once, under
/// the results mutex; `valid` is false when the restored run ended inside
/// the warmup (nothing measurable) — the ordinal then contributes no
/// observation, deterministically so for every worker count.
struct WindowSlot {
  bool completed = false;
  bool valid = false;
  WindowObservation obs;
};

/// The worker pool: a bounded job queue feeding `jobs` threads, each owning
/// a full replica simulator. Replicas are built inside the worker thread
/// (first use) from the shared spec; every registry registration happens in
/// build_sim_instance order on both sides, so the planner's snapshot
/// buffers restore onto them byte-for-byte.
class WindowPool {
 public:
  WindowPool(const ExperimentSpec& spec, std::uint32_t jobs,
             std::uint64_t fingerprint)
      : spec_(spec), fingerprint_(fingerprint) {
    ROP_ASSERT(jobs >= 1);
    queue_capacity_ = static_cast<std::size_t>(jobs) * 2;
    threads_.reserve(jobs);
    for (std::uint32_t i = 0; i < jobs; ++i) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }

  ~WindowPool() { finish(); }

  /// Enqueue one window (blocks while the queue is full — bounds the
  /// number of live snapshot buffers to ~2 per worker).
  void submit(WindowJob job) {
    {
      std::lock_guard<std::mutex> lk(results_mutex_);
      if (results_.size() <= job.ordinal) results_.resize(job.ordinal + 1);
    }
    std::unique_lock<std::mutex> lk(queue_mutex_);
    queue_space_.wait(lk, [&] { return queue_.size() < queue_capacity_; });
    queue_.push_back(std::move(job));
    queue_filled_.notify_one();
  }

  /// Block until ordinals 0..n-1 all completed; return their valid
  /// observations in ordinal order (the auto-stop prefix).
  [[nodiscard]] std::vector<double> wait_prefix_ipc(std::uint64_t n) {
    std::unique_lock<std::mutex> lk(results_mutex_);
    results_cv_.wait(lk, [&] {
      if (results_.size() < n) return false;
      for (std::uint64_t i = 0; i < n; ++i) {
        if (!results_[i].completed) return false;
      }
      return true;
    });
    std::vector<double> vals;
    vals.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      if (results_[i].valid) vals.push_back(results_[i].obs.ipc);
    }
    return vals;
  }

  /// Close the queue, drain in-flight jobs, join the workers. Idempotent.
  void finish() {
    {
      std::lock_guard<std::mutex> lk(queue_mutex_);
      closed_ = true;
      queue_filled_.notify_all();
    }
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  /// All slots, ordinal-indexed. Call after finish().
  [[nodiscard]] const std::vector<WindowSlot>& results() const {
    return results_;
  }

 private:
  void worker_main() {
    // Each worker's replica lives for the pool's lifetime: one
    // construction, one begin_run, then every job is restore + run.
    SimInstance inst = build_sim_instance(spec_);
    cpu::System& system = *inst.system;
    mem::MemorySystem& memory = *inst.memory;
    system.begin_run(spec_.instructions_per_core, spec_.max_cpu_cycles);
    const SnapshotContext ctx = inst.snapshot_context();
    const energy::DramPowerModel power(energy::DramEnergyParams{},
                                       memory.config().timings);
    Counter* const blocked =
        memory.stats()->counter_handle("mem.refresh_blocked_cycles");
    const double ratio = static_cast<double>(system.cpu_ratio());
    const auto total_instructions = [&] {
      std::uint64_t n = 0;
      for (CoreId c = 0; c < system.num_cores(); ++c) {
        n += system.core(c).stats().instructions;
      }
      return n;
    };

    for (;;) {
      WindowJob job;
      {
        std::unique_lock<std::mutex> lk(queue_mutex_);
        queue_filled_.wait(lk, [&] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) return;  // closed and drained
        job = std::move(queue_.front());
        queue_.pop_front();
        queue_space_.notify_one();
      }

      std::string err;
      const bool ok =
          load_snapshot_buffer(job.snapshot, ctx, fingerprint_, &err);
      ROP_ASSERT(ok && "parallel-sampling worker failed to restore");
      job.snapshot.clear();
      job.snapshot.shrink_to_fit();

      // Same measured-window body as the chained loop (sim/sampling.cpp):
      // excluded warmup, then one measured detailed window.
      WindowSlot slot;
      slot.obs.index = job.ordinal;
      slot.obs.stratum = job.stratum;
      bool done =
          system.advance_until(system.cpu_cycle() + spec_.sampling.warmup_cycles);
      if (!done) {
        const std::uint64_t c0 = system.cpu_cycle();
        const std::uint64_t i0 = total_instructions();
        const std::uint64_t b0 = blocked->value();
        const double e0 = sampled_window_energy_mj(
            memory, power, c0 / system.cpu_ratio());
        (void)system.advance_until(c0 + spec_.sampling.detail_cycles);
        const std::uint64_t c1 = system.cpu_cycle();
        if (c1 > c0) {
          const double dc = static_cast<double>(c1 - c0);
          const double dm = dc / ratio;
          slot.obs.cpu_cycles = c1 - c0;
          slot.obs.ipc =
              static_cast<double>(total_instructions() - i0) / dc;
          slot.obs.refresh_blocked_per_mem_cycle =
              static_cast<double>(blocked->value() - b0) / dm;
          const double e1 = sampled_window_energy_mj(
              memory, power, c1 / system.cpu_ratio());
          slot.obs.energy_mj_per_mcycle = (e1 - e0) * 1e6 / dm;
          slot.valid = true;
        }
      }
      slot.completed = true;

      {
        std::lock_guard<std::mutex> lk(results_mutex_);
        results_[job.ordinal] = slot;
      }
      results_cv_.notify_all();
    }
  }

  const ExperimentSpec& spec_;
  const std::uint64_t fingerprint_;

  std::mutex queue_mutex_;
  std::condition_variable queue_filled_;
  std::condition_variable queue_space_;
  std::deque<WindowJob> queue_;
  std::size_t queue_capacity_ = 0;
  bool closed_ = false;

  std::mutex results_mutex_;
  std::condition_variable results_cv_;
  std::vector<WindowSlot> results_;

  std::vector<std::thread> threads_;
};

}  // namespace

cpu::RunResult run_parallel_sampled(const ExperimentSpec& spec,
                                    SimInstance& backbone,
                                    SamplingSummary* out) {
  const SamplingSpec& s = spec.sampling;
  ROP_ASSERT(s.enabled && s.jobs >= 1);
  ROP_ASSERT(spec.shard_channels == 0 &&
             "planned sampling runs on the serial loop only");
  cpu::System& system = *backbone.system;

  const std::uint64_t fp = config_fingerprint(spec_canonical(spec));
  system.begin_run(spec.instructions_per_core, spec.max_cpu_cycles);
  const SnapshotContext ctx = backbone.snapshot_context();

  // Planning grid: the backbone advances in chunks of 1/kPlannerOversample
  // of the legacy inter-window spacing, so placement resolves finer than
  // the uniform grid without changing the mean window density. The chunk
  // count is known a priori — stratum membership is a pure function of the
  // chunk index.
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, s.functional_instructions / kPlannerOversample);
  const std::uint64_t planned_chunks =
      (spec.instructions_per_core + chunk - 1) / chunk;
  const std::uint32_t strata = s.strata;
  const auto stratum_of_chunk = [&](std::uint64_t i) -> std::uint32_t {
    if (strata == 0) return 0;
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(
        strata - 1, i * strata / planned_chunks));
  };

  WindowPool pool(spec, s.jobs, fp);

  // Stratified credit: a chunk earns window credit in proportion to its
  // traffic weight relative to the running mean weight; kPlannerOversample
  // credit buys one window, so uniform traffic reproduces the uniform
  // density and busy phases earn proportionally more.
  double credit = 0.0;
  double total_weight = 0.0;
  std::uint64_t executed_chunks = 0;
  std::vector<double> stratum_cycles(strata > 0 ? strata : 1, 0.0);
  std::uint64_t llc_miss_prev = system.shared_llc().stats().misses;

  std::uint64_t functional = 0;
  std::uint64_t placed = 0;
  bool converged = false;
  std::uint32_t prev_stratum = ~0u;
  // Per-stratum window budget: under a max_windows cap the remaining budget
  // is re-divided over the remaining strata at each stratum boundary, so
  // the cap is spent across the whole horizon instead of front-to-back.
  // (The uniform placement has no such reservation — all its windows land
  // at the start of the run once the cap binds; see test_parallel_sampling.)
  std::uint64_t stratum_budget = ~0ull;
  std::uint64_t stratum_placed = 0;

  for (std::uint64_t i = 0; i < planned_chunks; ++i) {
    if (system.cores_remaining() == 0 ||
        system.cpu_cycle() >= system.max_cpu_cycles()) {
      break;
    }
    const std::uint32_t stratum = stratum_of_chunk(i);

    bool place;
    if (strata == 0) {
      place = (i % kPlannerOversample) == 0;
    } else if (stratum != prev_stratum) {
      // Force-seed every stratum at its first chunk: coverage never drops
      // to zero even when a stratum carries almost no traffic weight.
      place = true;
      credit = 0.0;
      stratum_placed = 0;
      if (s.max_windows > 0) {
        const std::uint64_t left =
            s.max_windows > placed ? s.max_windows - placed : 0;
        const std::uint64_t strata_left = strata - stratum;
        stratum_budget = (left + strata_left - 1) / strata_left;  // ceil
        if (stratum_budget == 0) place = false;
      }
    } else {
      place = credit >= static_cast<double>(kPlannerOversample) &&
              stratum_placed < stratum_budget;
      if (place) credit -= static_cast<double>(kPlannerOversample);
    }
    prev_stratum = stratum;

    if (place && s.max_windows > 0 && placed >= s.max_windows) place = false;
    if (place && s.target_ci_frac > 0.0 && placed >= kAutoStopLookahead) {
      // Deterministic auto-stop: the decision for ordinal `placed` sees the
      // completed prefix 0..placed-kAutoStopLookahead-1 and applies the
      // chained loop's convergence rule to exactly those observations.
      // Content-only dependence -> identical for every worker count.
      const std::vector<double> prefix =
          pool.wait_prefix_ipc(placed - kAutoStopLookahead);
      if (prefix.size() >= s.min_windows) {
        const SamplingEstimate e = estimate_from(prefix);
        if (e.mean > 0.0 && e.ci95_half / e.mean <= s.target_ci_frac) {
          converged = true;
          break;  // stop placing; in-flight windows drain and are kept
        }
      }
    }

    if (place) {
      WindowJob job;
      job.ordinal = placed;
      job.stratum = stratum;
      job.snapshot = save_snapshot_buffer(ctx, fp);
      pool.submit(std::move(job));
      ++placed;
      ++stratum_placed;
    }

    // Execute the chunk functional-only and observe its traffic.
    const std::uint64_t spent =
        system.functional_window(chunk, s.critical_penalty);
    functional += spent;
    ++executed_chunks;
    const std::uint64_t miss_now = system.shared_llc().stats().misses;
    const double w = 1.0 + static_cast<double>(miss_now - llc_miss_prev);
    llc_miss_prev = miss_now;
    total_weight += w;
    if (strata > 0) {
      stratum_cycles[stratum] += static_cast<double>(spent);
      credit += w / (total_weight / static_cast<double>(executed_chunks));
    }
  }

  pool.finish();

  // Merge in placement order: the observation vector (and everything
  // derived from it) is independent of which worker ran which window.
  std::vector<WindowObservation> observations;
  std::vector<double> ipc_obs;
  std::vector<double> energy_obs;
  std::vector<double> blocked_obs;
  std::vector<std::uint32_t> obs_stratum;
  std::uint64_t measured = 0;
  for (const WindowSlot& slot : pool.results()) {
    if (!slot.valid) continue;
    observations.push_back(slot.obs);
    ipc_obs.push_back(slot.obs.ipc);
    energy_obs.push_back(slot.obs.energy_mj_per_mcycle);
    blocked_obs.push_back(slot.obs.refresh_blocked_per_mem_cycle);
    obs_stratum.push_back(slot.obs.stratum);
    measured += slot.obs.cpu_cycles;
  }

  cpu::RunResult result = system.finish_run();
  if (out != nullptr) {
    out->enabled = true;
    out->windows = observations.size();
    out->measured_cpu_cycles = measured;
    out->functional_cpu_cycles = functional;
    out->ci_converged = converged;
    out->placement = strata > 0 ? SamplingPlacement::kStratified
                                : SamplingPlacement::kUniform;
    out->workers = s.jobs;
    out->strata = strata;
    if (strata > 0) {
      out->ipc = stratified_estimate(ipc_obs, obs_stratum, stratum_cycles);
      out->energy_mj_per_mcycle =
          stratified_estimate(energy_obs, obs_stratum, stratum_cycles);
      out->refresh_blocked_per_mem_cycle =
          stratified_estimate(blocked_obs, obs_stratum, stratum_cycles);
    } else {
      out->ipc = estimate_from(ipc_obs);
      out->energy_mj_per_mcycle = estimate_from(energy_obs);
      out->refresh_blocked_per_mem_cycle = estimate_from(blocked_obs);
    }
    out->observations = std::move(observations);
  }
  return result;
}

}  // namespace rop::sim
