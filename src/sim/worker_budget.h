// Worker-budget policy shared by the experiment runner and the campaign
// engine: one place that answers "how many concurrent jobs?" so that jobs
// times per-job shards never oversubscribes the machine.
//
// The rule: jobs * shards_per_job <= hardware_concurrency (floored at one
// job — a single job may still oversubscribe a tiny machine with its own
// shards; that is the user's explicit choice via --shard-channels). An
// explicit request is honored verbatim except for the task-count clamp, so
// `--jobs 1` always means serial.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>

namespace rop::sim {

/// Number of worker threads to launch for `n_tasks` independent jobs, each
/// of which may internally run `shards_per_job` shard workers (channel
/// shards or parallel-sampling window workers — whichever width the job's
/// spec implies; see experiment_worker_width in sim/experiment.h).
/// `requested_jobs` = 0 derives the budget from the machine; any other
/// value is the user's call. `hardware` = 0 queries
/// hardware_concurrency(); tests pass an explicit value to pin the policy.
/// Always in [1, n_tasks] for n_tasks >= 1.
[[nodiscard]] inline unsigned worker_budget(unsigned requested_jobs,
                                            unsigned shards_per_job,
                                            std::size_t n_tasks,
                                            unsigned hardware = 0) {
  if (n_tasks == 0) return 1;
  unsigned jobs = requested_jobs;
  if (jobs == 0) {
    const unsigned hw = hardware > 0
                            ? hardware
                            : std::max(1u, std::thread::hardware_concurrency());
    const unsigned shards = std::max(1u, shards_per_job);
    jobs = std::max(1u, hw / shards);
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(jobs, n_tasks));
}

}  // namespace rop::sim
