// Campaign engine: expand a JSON sweep spec into a grid of
// ExperimentSpecs, run them on a bounded worker pool (budgeted against
// per-run channel shards; see sim/worker_budget.h), checkpoint every
// completed cell into a resumable manifest, and merge the per-cell stats
// documents into one aggregate JSON the figure harnesses can consume.
//
// Spec format (all axes optional; missing axes pin their default):
//
//   {
//     "name": "paper-grid",
//     "instructions_per_core": 200000,
//     "epoch_cycles": 0,             // > 0 turns on epoch sampling
//     "check": false,                // SimChecker per cell
//     "shard_channels": 0,           // per-run channel shards
//     "axes": {
//       "benchmark": ["lbm", "wl1"], // names or wl1..wl6 4-core mixes
//       "mode": ["baseline", "rop"],
//       "ranks": [1, 4],
//       "refresh": ["1x", "2x"],
//       "rank_partition": [false],
//       "channels": [1],
//       "llc_mb": [2]
//     }
//   }
//
// Cells expand in fixed axis order (benchmark, mode, ranks, refresh,
// rank_partition, channels, llc_mb — last axis fastest), so cell indices
// and labels are stable across invocations: the manifest checkpoints by
// index, and a resumed campaign reruns only the missing cells. The merged
// document excludes wall-clock fields, making an interrupted-then-resumed
// campaign byte-identical to an uninterrupted one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "sim/experiment.h"

namespace rop::sim {

struct CampaignCell {
  std::size_t index = 0;
  std::string label;
  ExperimentSpec spec;
};

struct CampaignOptions {
  std::string spec_path;  // JSON sweep spec
  std::string out_dir;    // manifest + per-cell + merged documents
  /// Concurrent cells; 0 derives jobs from hardware_concurrency divided by
  /// the widest cell's shard count (worker_budget).
  unsigned jobs = 0;
  /// Reuse completed cells from an existing manifest (same spec only —
  /// a fingerprint mismatch starts over).
  bool resume = true;
  /// Testing hook: stop claiming new cells after this many fresh
  /// completions (0 = run to the end). The campaign exits incomplete,
  /// exactly as if it had been killed between two checkpoints.
  std::size_t stop_after = 0;
  /// Stream one progress line per completed cell to stderr.
  bool progress = true;
  /// When non-empty, append one JSONL heartbeat per cell transition
  /// (claimed / completed) to this file: done/failed/running/total counts,
  /// wall-clock, throughput-based ETA, and the transitioning cell's label
  /// (see telemetry::ProgressWriter). Operational side channel only — it
  /// never affects the manifest or the merged document.
  std::string progress_file;
};

struct CampaignSummary {
  std::size_t total_cells = 0;
  std::size_t completed_cells = 0;  // cumulative, including resumed ones
  std::size_t ran_cells = 0;        // fresh completions this invocation
  std::size_t skipped_cells = 0;    // restored from the manifest
  bool complete = false;
  std::string merged_path;  // set when complete: out_dir/merged.json
};

/// Expand a parsed spec into the cell grid. Returns nullopt and sets
/// `error` on a malformed spec.
[[nodiscard]] std::optional<std::vector<CampaignCell>> expand_campaign(
    const json::Value& spec, std::string* error);

/// Run (or resume) a campaign end to end. Returns nullopt and sets
/// `error` on spec/IO failures; cell-level simulation failures abort (the
/// checker's contract).
[[nodiscard]] std::optional<CampaignSummary> run_campaign(
    const CampaignOptions& opts, std::string* error);

}  // namespace rop::sim
