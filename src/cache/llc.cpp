#include "cache/llc.h"

#include <algorithm>

namespace rop::cache {

namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Llc::Llc(const LlcConfig& cfg) : cfg_(cfg) {
  ROP_ASSERT(cfg.associativity > 0);
  ROP_ASSERT(cfg.size_bytes % (static_cast<std::uint64_t>(cfg.associativity) *
                               kLineBytes) ==
             0);
  const std::uint64_t sets =
      cfg.size_bytes / (static_cast<std::uint64_t>(cfg.associativity) *
                        kLineBytes);
  ROP_ASSERT(is_pow2(sets));
  num_sets_ = static_cast<std::uint32_t>(sets);
  ways_.resize(static_cast<std::size_t>(num_sets_) * cfg.associativity);
}

std::uint32_t Llc::set_index(Address addr) const {
  return static_cast<std::uint32_t>((addr >> kLineShift) & (num_sets_ - 1));
}

std::uint64_t Llc::tag_of(Address addr) const {
  return (addr >> kLineShift) / num_sets_;
}

bool Llc::contains(Address addr) const {
  const std::uint32_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.associativity];
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

LlcAccessResult Llc::access(Address addr, bool is_write) {
  ++stats_.accesses;
  ++clock_;
  const std::uint32_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.associativity];

  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      ++stats_.hits;
      base[w].lru = clock_;
      if (is_write) base[w].dirty = true;
      return LlcAccessResult{true, std::nullopt};
    }
  }

  ++stats_.misses;
  // Victim: first invalid way, else LRU.
  Way* victim = base;
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }

  LlcAccessResult result{false, std::nullopt};
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    const Address victim_line =
        (victim->tag * num_sets_ + set) << kLineShift;
    result.writeback = victim_line;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = clock_;
  victim->dirty = is_write;
  return result;
}

void Llc::reset() {
  std::fill(ways_.begin(), ways_.end(), Way{});
  clock_ = 0;
  stats_ = LlcStats{};
}

}  // namespace rop::cache
