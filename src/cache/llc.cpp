#include "cache/llc.h"

#include <algorithm>

namespace rop::cache {

namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Llc::Llc(const LlcConfig& cfg) : cfg_(cfg) {
  ROP_ASSERT(cfg.associativity > 0);
  ROP_ASSERT(cfg.size_bytes % (static_cast<std::uint64_t>(cfg.associativity) *
                               kLineBytes) ==
             0);
  const std::uint64_t sets =
      cfg.size_bytes / (static_cast<std::uint64_t>(cfg.associativity) *
                        kLineBytes);
  ROP_ASSERT(is_pow2(sets));
  num_sets_ = static_cast<std::uint32_t>(sets);
  ways_.resize(static_cast<std::size_t>(num_sets_) * cfg.associativity);
  mru_.assign(num_sets_, 0);
}

std::uint32_t Llc::set_index(Address addr) const {
  return static_cast<std::uint32_t>((addr >> kLineShift) & (num_sets_ - 1));
}

std::uint64_t Llc::tag_of(Address addr) const {
  return (addr >> kLineShift) / num_sets_;
}

bool Llc::contains(Address addr) const {
  const std::uint32_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.associativity];
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Llc::bind_stats(StatRegistry& registry, const std::string& prefix) {
  h_.accesses = registry.counter_handle(prefix + "accesses");
  h_.hits = registry.counter_handle(prefix + "hits");
  h_.misses = registry.counter_handle(prefix + "misses");
  h_.writebacks = registry.counter_handle(prefix + "writebacks");
}

LlcAccessResult Llc::access(Address addr, bool is_write) {
  ++stats_.accesses;
  if (h_.accesses != nullptr) h_.accesses->inc();
  ++clock_;
  const std::uint32_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.associativity];

  // MRU fast path: repeated touches to the hottest line in a set resolve
  // with a single tag compare. The set scan below is the slow path.
  {
    Way& mru = base[mru_[set]];
    if (mru.valid && mru.tag == tag) {
      ++stats_.hits;
      if (h_.hits != nullptr) h_.hits->inc();
      mru.lru = clock_;
      if (is_write) mru.dirty = true;
      return LlcAccessResult{true, std::nullopt};
    }
  }

  // Single pass over the set: probe for the tag while tracking the victim
  // a miss would need — the first invalid way, else the strictly-least-lru
  // valid way (lowest index wins ties). Hit/miss/victim decisions are
  // identical to a separate probe loop followed by a victim loop; a miss
  // just stops paying for the second scan.
  constexpr std::uint32_t kNone = ~0u;
  std::uint32_t first_invalid = kNone;
  std::uint32_t lru_way = kNone;
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    Way& way = base[w];
    if (!way.valid) {
      if (first_invalid == kNone) first_invalid = w;
      continue;
    }
    if (way.tag == tag) {
      ++stats_.hits;
      if (h_.hits != nullptr) h_.hits->inc();
      way.lru = clock_;
      if (is_write) way.dirty = true;
      mru_[set] = w;
      return LlcAccessResult{true, std::nullopt};
    }
    if (lru_way == kNone || way.lru < base[lru_way].lru) lru_way = w;
  }

  ++stats_.misses;
  if (h_.misses != nullptr) h_.misses->inc();
  Way* victim = first_invalid != kNone ? &base[first_invalid] : &base[lru_way];

  LlcAccessResult result{false, std::nullopt};
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    if (h_.writebacks != nullptr) h_.writebacks->inc();
    const Address victim_line =
        (victim->tag * num_sets_ + set) << kLineShift;
    result.writeback = victim_line;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = clock_;
  victim->dirty = is_write;
  mru_[set] = static_cast<std::uint32_t>(victim - base);
  return result;
}

void Llc::reset() {
  std::fill(ways_.begin(), ways_.end(), Way{});
  std::fill(mru_.begin(), mru_.end(), 0u);
  clock_ = 0;
  stats_ = LlcStats{};
}

}  // namespace rop::cache
