#include "cache/llc.h"

#include <algorithm>

namespace rop::cache {

namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Llc::Llc(const LlcConfig& cfg) : cfg_(cfg) {
  ROP_ASSERT(cfg.associativity > 0);
  ROP_ASSERT(cfg.size_bytes % (static_cast<std::uint64_t>(cfg.associativity) *
                               kLineBytes) ==
             0);
  const std::uint64_t sets =
      cfg.size_bytes / (static_cast<std::uint64_t>(cfg.associativity) *
                        kLineBytes);
  ROP_ASSERT(is_pow2(sets));
  num_sets_ = static_cast<std::uint32_t>(sets);
  ways_.resize(static_cast<std::size_t>(num_sets_) * cfg.associativity);
  mru_.assign(num_sets_, 0);
}

std::uint32_t Llc::set_index(Address addr) const {
  return static_cast<std::uint32_t>((addr >> kLineShift) & (num_sets_ - 1));
}

std::uint64_t Llc::tag_of(Address addr) const {
  return (addr >> kLineShift) / num_sets_;
}

bool Llc::contains(Address addr) const {
  const std::uint32_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.associativity];
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Llc::bind_stats(StatRegistry& registry, const std::string& prefix) {
  h_.accesses = registry.counter_handle(prefix + "accesses");
  h_.hits = registry.counter_handle(prefix + "hits");
  h_.misses = registry.counter_handle(prefix + "misses");
  h_.writebacks = registry.counter_handle(prefix + "writebacks");
}

LlcAccessResult Llc::access(Address addr, bool is_write) {
  ++stats_.accesses;
  if (h_.accesses != nullptr) h_.accesses->inc();
  ++clock_;
  const std::uint32_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.associativity];

  // MRU fast path: repeated touches to the hottest line in a set resolve
  // with a single tag compare. The set scan below is the slow path.
  {
    Way& mru = base[mru_[set]];
    if (mru.valid && mru.tag == tag) {
      ++stats_.hits;
      if (h_.hits != nullptr) h_.hits->inc();
      mru.lru = clock_;
      if (is_write) mru.dirty = true;
      return LlcAccessResult{true, std::nullopt};
    }
  }

  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      ++stats_.hits;
      if (h_.hits != nullptr) h_.hits->inc();
      base[w].lru = clock_;
      if (is_write) base[w].dirty = true;
      mru_[set] = w;
      return LlcAccessResult{true, std::nullopt};
    }
  }

  ++stats_.misses;
  if (h_.misses != nullptr) h_.misses->inc();
  // Victim: first invalid way, else LRU.
  Way* victim = base;
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }

  LlcAccessResult result{false, std::nullopt};
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    if (h_.writebacks != nullptr) h_.writebacks->inc();
    const Address victim_line =
        (victim->tag * num_sets_ + set) << kLineShift;
    result.writeback = victim_line;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = clock_;
  victim->dirty = is_write;
  mru_[set] = static_cast<std::uint32_t>(victim - base);
  return result;
}

void Llc::reset() {
  std::fill(ways_.begin(), ways_.end(), Way{});
  std::fill(mru_.begin(), mru_.end(), 0u);
  clock_ = 0;
  stats_ = LlcStats{};
}

}  // namespace rop::cache
