// Last-level cache model: set-associative, write-back, write-allocate, LRU.
//
// The LLC filters core traffic before it reaches the memory system — the
// paper's §V-C3 sensitivity study sweeps its size (1/2/4/8 MB) to show how
// filtering changes refresh exposure. Timing is not modeled here (hits are
// folded into the core's compute stream); only the miss/writeback traffic
// matters to the memory system.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace rop::cache {

struct LlcConfig {
  std::uint64_t size_bytes = 2ull << 20;  // 2 MB (single-core default)
  std::uint32_t associativity = 16;
};

struct LlcAccessResult {
  bool hit = false;
  /// Dirty victim line address evicted by this access's fill, if any.
  std::optional<Address> writeback;
};

struct LlcStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double hit_rate() const {
    return accesses ? static_cast<double>(hits) / static_cast<double>(accesses)
                    : 0.0;
  }
};

class Llc {
 public:
  explicit Llc(const LlcConfig& cfg);

  /// Access a byte address. On a miss the line is allocated immediately
  /// (hit-under-miss is implicit; the fill's DRAM latency is modeled by the
  /// memory system through the core's outstanding-miss tracking).
  LlcAccessResult access(Address addr, bool is_write);

  /// Probe without allocation or LRU update.
  [[nodiscard]] bool contains(Address addr) const;

  /// Mirror this cache's event counts into `registry` under
  /// `prefix` + {accesses,hits,misses,writebacks}. Handles are resolved
  /// here, once; access() then bumps them by pointer.
  void bind_stats(StatRegistry& registry, const std::string& prefix);

  [[nodiscard]] const LlcStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }
  [[nodiscard]] const LlcConfig& config() const { return cfg_; }

  void reset();

  /// Snapshot serialization: the full tag/LRU array and the stat mirror.
  /// Config-derived geometry and the bound stat handles do not ride.
  template <class Ar>
  void io(Ar& ar) {
    ar(ways_, mru_, clock_, stats_.accesses, stats_.hits, stats_.misses,
       stats_.writebacks);
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recently used
    bool valid = false;
    bool dirty = false;

    template <class Ar>
    void io(Ar& ar) {
      ar(tag, lru, valid, dirty);
    }
  };

  [[nodiscard]] std::uint32_t set_index(Address addr) const;
  [[nodiscard]] std::uint64_t tag_of(Address addr) const;

  struct StatHandles {
    Counter* accesses = nullptr;
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* writebacks = nullptr;
  };

  LlcConfig cfg_;
  std::uint32_t num_sets_;
  std::vector<Way> ways_;  // num_sets_ * associativity, row-major by set
  /// Per-set most-recently-touched way: access() probes it with a single
  /// tag compare before falling back to the set scan. Purely an access
  /// accelerator — hit/miss/victim decisions are unchanged by it.
  std::vector<std::uint32_t> mru_;
  std::uint64_t clock_ = 0;
  LlcStats stats_;
  StatHandles h_;  // null until bind_stats
};

}  // namespace rop::cache
