#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace rop::json {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    std::optional<Value> v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        v.reset();
      }
    }
    if (!v && error != nullptr) *error = error_;
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      std::ostringstream os;
      os << what << " at byte " << pos_;
      error_ = os.str();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (eat(c)) return true;
    fail(std::string("expected '") + c + "'");
    return false;
  }

  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't':
        if (literal("true")) return Value(true);
        return std::nullopt;
      case 'f':
        if (literal("false")) return Value(false);
        return std::nullopt;
      case 'n':
        if (literal("null")) return Value();
        return std::nullopt;
      default:
        return parse_number();
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    fail("invalid literal");
    return false;
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (eat('}')) return Value(std::move(obj));
    for (;;) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!expect(':')) return std::nullopt;
      std::optional<Value> val = parse_value();
      if (!val) return std::nullopt;
      obj.insert_or_assign(std::move(*key), std::move(*val));
      skip_ws();
      if (eat(',')) continue;
      if (!expect('}')) return std::nullopt;
      return Value(std::move(obj));
    }
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (eat(']')) return Value(std::move(arr));
    for (;;) {
      std::optional<Value> val = parse_value();
      if (!val) return std::nullopt;
      arr.push_back(std::move(*val));
      skip_ws();
      if (eat(',')) continue;
      if (!expect(']')) return std::nullopt;
      return Value(std::move(arr));
    }
  }

  std::optional<std::string> parse_string() {
    if (!expect('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          std::uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<std::uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<std::uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<std::uint32_t>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
              return std::nullopt;
            }
          }
          // Basic-multilingual-plane only (no surrogate pairing): enough
          // for the ASCII identifiers these config files contain.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    const bool negative = eat('-');
    bool is_integer = true;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start + (negative ? 1 : 0)) {
      fail("invalid number");
      return std::nullopt;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (is_integer) {
      errno = 0;
      if (!negative) {
        const std::uint64_t u = std::strtoull(token.c_str(), nullptr, 10);
        if (errno == 0) return Value(u);
      } else {
        const std::int64_t i = std::strtoll(token.c_str(), nullptr, 10);
        if (errno == 0) return Value(i);
      }
      // Out-of-range integers fall back to the double representation.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), nullptr);
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace rop::json
