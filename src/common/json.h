// Minimal JSON DOM parser for configuration and result files (campaign
// specs, per-run stats documents). Recursive descent over UTF-8 text, no
// dependencies. Numbers keep an exact unsigned/signed integer view
// alongside the double so 64-bit counters survive a parse -> merge round
// trip without precision loss.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace rop::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps object keys sorted, which makes re-serialized documents
/// deterministic — the campaign merge relies on that for byte-identical
/// resume output.
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit Value(std::uint64_t u)
      : kind_(Kind::kNumber),
        num_(static_cast<double>(u)),
        u64_(u),
        has_u64_(true) {}
  explicit Value(std::int64_t i)
      : kind_(Kind::kNumber), num_(static_cast<double>(i)) {
    if (i >= 0) {
      u64_ = static_cast<std::uint64_t>(i);
      has_u64_ = true;
    } else {
      i64_ = i;
      has_i64_ = true;
    }
  }
  explicit Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const {
    ROP_ASSERT(is_bool());
    return bool_;
  }
  [[nodiscard]] double as_double() const {
    ROP_ASSERT(is_number());
    return num_;
  }
  /// Exact integer view: set when the literal was a non-negative integer
  /// that fits (u64) / a negative integer that fits (i64).
  [[nodiscard]] bool has_u64() const { return has_u64_; }
  [[nodiscard]] std::uint64_t as_u64() const {
    ROP_ASSERT(has_u64_);
    return u64_;
  }
  [[nodiscard]] bool has_i64() const { return has_i64_; }
  [[nodiscard]] std::int64_t as_i64() const {
    ROP_ASSERT(has_i64_);
    return i64_;
  }
  [[nodiscard]] const std::string& as_string() const {
    ROP_ASSERT(is_string());
    return str_;
  }
  [[nodiscard]] const Array& as_array() const {
    ROP_ASSERT(is_array());
    return *arr_;
  }
  [[nodiscard]] const Object& as_object() const {
    ROP_ASSERT(is_object());
    return *obj_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
  }

 private:
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t u64_ = 0;
  std::int64_t i64_ = 0;
  bool has_u64_ = false;
  bool has_i64_ = false;
  std::string str_;
  // shared_ptr keeps Value copyable/regular without a recursive variant.
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parse a complete JSON document. On failure returns nullopt and, when
/// `error` is non-null, a one-line message with the byte offset.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr);

}  // namespace rop::json
