#include "common/stats.h"

#include <sstream>

namespace rop {

double Scalar::sum() const {
  // fsum rounding: add the partials from the largest down until the sum
  // turns inexact, then nudge for round-half-even when the remaining tail
  // agrees in sign with the rounding error. Because the partials exactly
  // represent the true sum, this returns the correctly-rounded double for
  // it — the same bits no matter the recording or merge order.
  std::size_t n = partials_.size();
  if (n == 0) return 0.0;
  double hi = partials_[--n];
  double lo = 0.0;
  while (n > 0) {
    const double x = hi;
    const double y = partials_[--n];
    hi = x + y;
    lo = y - (hi - x);
    if (lo != 0.0) break;
  }
  if (n > 0 && ((lo < 0.0 && partials_[n - 1] < 0.0) ||
                (lo > 0.0 && partials_[n - 1] > 0.0))) {
    const double y2 = lo * 2.0;
    const double x2 = hi + y2;
    if (y2 == x2 - hi) hi = x2;
  }
  return hi;
}

void Scalar::merge(const Scalar& other) {
  if (other.count_ == 0) return;
  min_ = count_ ? std::min(min_, other.min_) : other.min_;
  max_ = count_ ? std::max(max_, other.max_) : other.max_;
  count_ += other.count_;
  for (const double p : other.partials_) accumulate(p);
}

Counter& StatRegistry::counter(const std::string& name) {
  return counters_[name];
}

Scalar& StatRegistry::scalar(const std::string& name) {
  return scalars_[name];
}

Histogram& StatRegistry::histogram(const std::string& name,
                                   std::uint64_t bucket_width,
                                   std::size_t num_buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(bucket_width, num_buckets)).first;
  }
  return it->second;
}

std::uint64_t StatRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Scalar* StatRegistry::find_scalar(const std::string& name) const {
  const auto it = scalars_.find(name);
  return it == scalars_.end() ? nullptr : &it->second;
}

const Histogram* StatRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void StatRegistry::merge_from(const StatRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, s] : other.scalars_) scalars_[name].merge(s);
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.bucket_width(), h.num_buckets() - 1).merge(h);
  }
}

void StatRegistry::reset_all() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, s] : scalars_) s.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::string StatRegistry::report() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, s] : scalars_) {
    os << name << " count=" << s.count() << " mean=" << s.mean()
       << " min=" << s.min() << " max=" << s.max() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " count=" << h.count() << " mean=" << h.mean() << '\n';
  }
  return os.str();
}

}  // namespace rop
