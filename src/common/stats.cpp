#include "common/stats.h"

#include <sstream>

namespace rop {

Counter& StatRegistry::counter(const std::string& name) {
  return counters_[name];
}

Scalar& StatRegistry::scalar(const std::string& name) {
  return scalars_[name];
}

Histogram& StatRegistry::histogram(const std::string& name,
                                   std::uint64_t bucket_width,
                                   std::size_t num_buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(bucket_width, num_buckets)).first;
  }
  return it->second;
}

std::uint64_t StatRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Scalar* StatRegistry::find_scalar(const std::string& name) const {
  const auto it = scalars_.find(name);
  return it == scalars_.end() ? nullptr : &it->second;
}

const Histogram* StatRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void StatRegistry::reset_all() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, s] : scalars_) s.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::string StatRegistry::report() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, s] : scalars_) {
    os << name << " count=" << s.count() << " mean=" << s.mean()
       << " min=" << s.min() << " max=" << s.max() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " count=" << h.count() << " mean=" << h.mean() << '\n';
  }
  return os.str();
}

}  // namespace rop
