// Plain-text table rendering for bench harness output: every figure/table
// reproduction prints rows through this so output stays uniform and easy to
// diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace rop {

/// Column-aligned text table with a title, header row and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string fmt(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  [[nodiscard]] std::string render() const;
  void print() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rop
