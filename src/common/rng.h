// Deterministic pseudo-random number generation.
//
// Simulation runs must be bit-reproducible across machines and reruns, so we
// implement xoshiro256** (public-domain algorithm by Blackman & Vigna)
// seeded through SplitMix64 instead of relying on std::mt19937 parameters or
// platform-dependent distributions.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"

namespace rop {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 is invalid.
  std::uint64_t next_below(std::uint64_t bound) {
    ROP_ASSERT(bound > 0);
    // Debiased via rejection sampling on the top of the range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Geometric-ish gap: returns k >= 1 with mean approximately `mean`.
  std::uint64_t next_gap(double mean) {
    if (mean <= 1.0) return 1;
    return next_gap_with_denom(gap_denom(mean));
  }

  /// The denominator next_gap_with_denom expects for a given mean
  /// (log1p(-1/mean)). Only valid for mean > 1.
  [[nodiscard]] static double gap_denom(double mean) {
    return __builtin_log1p(-1.0 / mean);
  }

  /// next_gap with a caller-precomputed denominator: a hot caller drawing
  /// many gaps from one distribution pays one libm call per draw instead
  /// of two. Keeps the division (not a multiply by the reciprocal) so the
  /// gaps are bit-identical to next_gap(mean).
  std::uint64_t next_gap_with_denom(double denom) {
    // Inverse-CDF sampling of a geometric distribution with success
    // probability 1/mean, shifted to be >= 1.
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999999999;
    const double g = __builtin_log1p(-u) / denom;
    const auto out = static_cast<std::uint64_t>(g) + 1;
    return out == 0 ? 1 : out;
  }

  /// Generator state snapshot, for determinism tests that pin RNG
  /// positions across execution strategies (two streams that consumed the
  /// same draws have equal state).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }

  /// Restore a snapshot taken with state(): the stream continues exactly
  /// where the captured generator left off (checkpoint/restore).
  void set_state(const std::array<std::uint64_t, 4>& s) { state_ = s; }

  /// Snapshot serialization (see common/snapshot_io.h).
  template <class Ar>
  void io(Ar& ar) {
    ar(state_);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rop
