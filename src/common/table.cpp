#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/types.h"

namespace rop {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    ROP_ASSERT(row.size() == header_.size());
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  // Compute column widths across header + rows.
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace rop
