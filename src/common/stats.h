// Statistics framework: named counters, scalar gauges, and histograms that
// every subsystem registers into a shared StatRegistry. Benches and tests
// read results by name; nothing in the hot path allocates after setup.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace rop {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

  /// Fold another counter in (channel-shard and campaign aggregation).
  void merge(const Counter& other) { value_ += other.value_; }

  /// Snapshot serialization (see common/snapshot_io.h).
  template <class Ar>
  void io(Ar& ar) {
    ar(value_);
  }

 private:
  std::uint64_t value_ = 0;
};

/// Running scalar statistics (count / sum / min / max / mean).
///
/// The sum is held as an exact expansion of non-overlapping doubles
/// (Shewchuk error-free accumulation — the algorithm behind math.fsum),
/// so the represented value is the true real-number sum of the recorded
/// samples and therefore independent of recording order. That is what
/// makes merge() exact: folding per-channel shards, or per-run campaign
/// results, yields bit-identical sum()/mean() no matter how the samples
/// were interleaved in a serial run. For integral samples (latencies in
/// cycles) the expansion stays at a single partial until the running sum
/// crosses 2^53, so record() costs one extra compare on the hot path.
class Scalar {
 public:
  void record(double v) {
    ++count_;
    accumulate(v);
    min_ = (count_ == 1) ? v : std::min(min_, v);
    max_ = (count_ == 1) ? v : std::max(max_, v);
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Correctly-rounded value of the exact partial-sum expansion.
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum() / static_cast<double>(count_) : 0.0;
  }
  void reset() { *this = Scalar{}; }

  /// Fold another scalar in. Exact: both expansions represent their true
  /// sums, so the merged expansion represents the pooled true sum.
  void merge(const Scalar& other);

  /// Snapshot serialization. The partial expansion is serialized verbatim
  /// (each partial bit-exact via bit_cast), so the restored Scalar produces
  /// the same correctly-rounded sum() and keeps merging exactly.
  template <class Ar>
  void io(Ar& ar) {
    ar(count_, partials_, min_, max_);
  }

 private:
  /// Grow the expansion by `x` (error-free transformation per partial).
  void accumulate(double x) {
    std::size_t keep = 0;
    for (double y : partials_) {
      if (std::abs(x) < std::abs(y)) std::swap(x, y);
      const double hi = x + y;
      const double lo = y - (hi - x);
      if (lo != 0.0) partials_[keep++] = lo;
      x = hi;
    }
    partials_.resize(keep);
    partials_.push_back(x);
  }

  std::uint64_t count_ = 0;
  /// Non-overlapping partials in increasing magnitude; their exact sum is
  /// the exact sum of everything recorded.
  std::vector<double> partials_;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over [0, bucket_width * num_buckets), with an
/// overflow bucket at the top.
class Histogram {
 public:
  Histogram() : Histogram(1, 16) {}
  Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
      : width_(bucket_width), buckets_(num_buckets + 1, 0) {
    ROP_ASSERT(bucket_width > 0);
    ROP_ASSERT(num_buckets > 0);
  }
  /// Reconstruct from exported parts (`buckets` includes the overflow
  /// bucket): the campaign merge parses per-run JSON back into histograms
  /// and folds them with merge().
  Histogram(std::uint64_t bucket_width, std::vector<std::uint64_t> buckets,
            std::uint64_t sample_sum)
      : width_(bucket_width), buckets_(std::move(buckets)), sum_(sample_sum) {
    ROP_ASSERT(bucket_width > 0);
    ROP_ASSERT(buckets_.size() >= 2);
    for (const std::uint64_t b : buckets_) count_ += b;
  }

  void record(std::uint64_t v) {
    const std::size_t idx =
        std::min<std::size_t>(v / width_, buckets_.size() - 1);
    ++buckets_[idx];
    ++count_;
    sum_ += v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Exact integer sum of all recorded samples.
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i);
  }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket_width() const { return width_; }

  /// Percentile estimate from the buckets with linear interpolation inside
  /// the containing bucket, `p` in [0, 100]. Continuous counterpart of
  /// quantile(): p50/p95/p99 for reports and the JSON export. Samples in
  /// the overflow bucket interpolate within one further bucket width — an
  /// approximation, so a percentile that lands there is a lower bound.
  [[nodiscard]] double percentile(double p) const {
    if (count_ == 0) return 0.0;
    const double target = (p / 100.0) * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      const double lo = static_cast<double>(seen);
      seen += buckets_[i];
      if (static_cast<double>(seen) >= target) {
        const double frac =
            std::clamp((target - lo) / static_cast<double>(buckets_[i]),
                       0.0, 1.0);
        return (static_cast<double>(i) + frac) *
               static_cast<double>(width_);
      }
    }
    return static_cast<double>(buckets_.size() * width_);
  }

  /// Smallest v such that at least `q` fraction of samples are <= v
  /// (bucket-upper-bound approximation).
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      acc += buckets_[i];
      if (acc >= target) return (i + 1) * width_;
    }
    return buckets_.size() * width_;
  }

  void reset() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
  }

  /// Snapshot serialization. Geometry rides along so a restored registry
  /// can recreate histograms that only the running simulation registers.
  template <class Ar>
  void io(Ar& ar) {
    ar(width_, buckets_, count_, sum_);
  }

  /// Fold another histogram in. Exact for every derived statistic
  /// (percentiles, mean): bucket counts and the integer sample sum add.
  /// Both histograms must share the bucket geometry.
  void merge(const Histogram& other) {
    ROP_ASSERT(width_ == other.width_);
    ROP_ASSERT(buckets_.size() == other.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

 private:
  std::uint64_t width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Name → stat registry. Ownership lives here; subsystems hold pointers.
/// Names are hierarchical by convention, e.g. "mem.reads", "rop.buffer.hits".
class StatRegistry {
 public:
  Counter& counter(const std::string& name);
  Scalar& scalar(const std::string& name);
  Histogram& histogram(const std::string& name, std::uint64_t bucket_width,
                       std::size_t num_buckets);

  /// Handle registration: resolve a name once (at construction time) and get
  /// a stable pointer for the hot path. The registry's node-based maps keep
  /// handles valid across later registrations. Hot-path code must use these —
  /// never a string-keyed lookup per event.
  [[nodiscard]] Counter* counter_handle(const std::string& name) {
    return &counter(name);
  }
  [[nodiscard]] Scalar* scalar_handle(const std::string& name) {
    return &scalar(name);
  }
  [[nodiscard]] Histogram* histogram_handle(const std::string& name,
                                            std::uint64_t bucket_width,
                                            std::size_t num_buckets) {
    return &histogram(name, bucket_width, num_buckets);
  }

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] const Scalar* find_scalar(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Whole-registry iteration (JSON export, epoch sampling). The node-based
  /// maps keep references stable across later registrations.
  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Scalar>& scalars() const {
    return scalars_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void reset_all();

  /// Fold every stat of `other` into this registry, creating any missing
  /// entries (histograms adopt the source geometry). Counters add,
  /// scalars merge exactly (see Scalar), histograms add bucket-wise —
  /// the aggregation primitive behind channel-shard folds and campaign
  /// stats merging.
  void merge_from(const StatRegistry& other);

  /// Render "name value" lines, sorted by name, for debugging dumps.
  [[nodiscard]] std::string report() const;

  /// Snapshot serialization. Values restore *into* the existing entries
  /// (created when the simulator was assembled), so Counter*/Scalar*/
  /// Histogram* handles cached by subsystems stay valid across a restore.
  /// Entries present in the snapshot but not yet registered are created.
  template <class Ar>
  void io(Ar& ar) {
    if constexpr (Ar::kIsReader) {
      std::uint64_t n = 0;
      ar(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string name;
        ar(name);
        ar.field(counters_[name]);
      }
      ar(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string name;
        ar(name);
        ar.field(scalars_[name]);
      }
      ar(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string name;
        ar(name);
        ar.field(histograms_[name]);
      }
    } else {
      std::uint64_t n = counters_.size();
      ar(n);
      for (auto& [name, c] : counters_) {
        std::string key = name;
        ar(key);
        ar.field(c);
      }
      n = scalars_.size();
      ar(n);
      for (auto& [name, s] : scalars_) {
        std::string key = name;
        ar(key);
        ar.field(s);
      }
      n = histograms_.size();
      ar(n);
      for (auto& [name, h] : histograms_) {
        std::string key = name;
        ar(key);
        ar.field(h);
      }
    }
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Scalar> scalars_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rop
