// Core vocabulary types shared by every subsystem.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <limits>

namespace rop {

/// Physical byte address.
using Address = std::uint64_t;

/// Simulation time in DRAM-controller clock cycles (tCK granularity).
using Cycle = std::uint64_t;

/// Sentinel for "no cycle" / "never".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Identifier types. Plain integers are enough, but we name them so
/// signatures stay readable.
using CoreId = std::uint32_t;
using ChannelId = std::uint32_t;
using RankId = std::uint32_t;
using BankId = std::uint32_t;
using RowId = std::uint32_t;
using ColumnId = std::uint32_t;
using RequestId = std::uint64_t;

/// Cache line size used throughout (bytes). DDR4 burst of 8 on a x64
/// channel transfers exactly one 64 B line.
inline constexpr std::uint32_t kLineBytes = 64;
inline constexpr std::uint32_t kLineShift = 6;

/// Fully decomposed DRAM coordinate of a cache line.
struct DramCoord {
  ChannelId channel = 0;
  RankId rank = 0;
  BankId bank = 0;
  RowId row = 0;
  ColumnId column = 0;

  bool operator==(const DramCoord&) const = default;

  /// Snapshot serialization (see common/snapshot_io.h).
  template <class Ar>
  void io(Ar& ar) {
    ar(channel, rank, bank, row, column);
  }
};

/// Lightweight always-on assertion (simulators must not silently corrupt
/// state in release builds).
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "ROP_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

#define ROP_ASSERT(expr) \
  ((expr) ? (void)0 : ::rop::assert_fail(#expr, __FILE__, __LINE__))

}  // namespace rop
