// Binary snapshot archives: the serialization substrate behind full-simulator
// checkpoint/restore (src/sim/snapshot.h).
//
// One template `io(Ar&)` member per class describes its mutable state once;
// snap::Writer streams it into a byte buffer and snap::Reader streams it back.
// The format is deliberately dumb — fields in declaration order, integers
// little-endian, no per-field tags — because a snapshot is only ever read by
// the same binary layout that wrote it (a version + config fingerprint guard
// in sim/snapshot.cpp rejects everything else). Dumb buys bit-exactness:
// doubles round-trip through std::bit_cast, so restored state is *identical*,
// not merely close.
//
// Supported field types:
//   - bool (one byte), enums (underlying type), all integral types
//     (little-endian), float/double (bit_cast to the same-width integer)
//   - std::string, std::vector<T>, std::vector<bool>, std::deque<T>,
//     std::array<T, N>, std::optional<T>
//   - any class with a `template <class Ar> void io(Ar& ar)` member
//
// Classes whose state cannot round-trip field-by-field (hash containers,
// derived caches) branch on `Ar::kIsReader` inside io() and rebuild the
// derived part from the serialized source of truth.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

namespace rop::snap {

namespace detail {

template <class T>
struct IsStdOptional : std::false_type {};
template <class T>
struct IsStdOptional<std::optional<T>> : std::true_type {};

template <class T>
struct IsStdVector : std::false_type {};
template <class T>
struct IsStdVector<std::vector<T>> : std::true_type {};

template <class T>
struct IsStdDeque : std::false_type {};
template <class T>
struct IsStdDeque<std::deque<T>> : std::true_type {};

template <class T>
struct IsStdArray : std::false_type {};
template <class T, std::size_t N>
struct IsStdArray<std::array<T, N>> : std::true_type {};

/// Same-width unsigned image of a float/double for bit-exact round-trips.
template <class T>
using FloatBits =
    std::conditional_t<sizeof(T) == 8, std::uint64_t, std::uint32_t>;

/// True when a container of T can be moved as one memcpy without changing
/// the archive bytes: the serialized form of an arithmetic scalar is its
/// little-endian image (floats via bit_cast), which IS its memory image on
/// a little-endian host. bool is excluded (serialized as one byte each,
/// and std::vector<bool> has no contiguous storage anyway).
template <class T>
inline constexpr bool kBulkCopyable =
    std::endian::native == std::endian::little &&
    (std::is_integral_v<T> || std::is_floating_point_v<T>) &&
    !std::is_same_v<T, bool>;

}  // namespace detail

/// Serializing archive: appends fields to a growing byte buffer.
class Writer {
 public:
  static constexpr bool kIsReader = false;

  template <class... Ts>
  void operator()(Ts&... fields) {
    (field(fields), ...);
  }

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

  template <class T>
  void field(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      raw_uint(static_cast<std::uint8_t>(v ? 1 : 0));
    } else if constexpr (std::is_enum_v<T>) {
      raw_uint(static_cast<std::make_unsigned_t<std::underlying_type_t<T>>>(
          static_cast<std::underlying_type_t<T>>(v)));
    } else if constexpr (std::is_integral_v<T>) {
      raw_uint(static_cast<std::make_unsigned_t<T>>(v));
    } else if constexpr (std::is_floating_point_v<T>) {
      raw_uint(std::bit_cast<detail::FloatBits<T>>(v));
    } else if constexpr (std::is_same_v<T, std::string>) {
      raw_uint(static_cast<std::uint64_t>(v.size()));
      buf_.append(v.data(), v.size());
    } else if constexpr (detail::IsStdOptional<T>::value) {
      field(v.has_value());
      if (v.has_value()) field(*v);
    } else if constexpr (std::is_same_v<T, std::vector<bool>>) {
      raw_uint(static_cast<std::uint64_t>(v.size()));
      for (const bool b : v) field(b);
    } else if constexpr (detail::IsStdVector<T>::value) {
      raw_uint(static_cast<std::uint64_t>(v.size()));
      if constexpr (detail::kBulkCopyable<typename T::value_type>) {
        buf_.append(reinterpret_cast<const char*>(v.data()),
                    v.size() * sizeof(typename T::value_type));
      } else {
        for (const auto& e : v) field(e);
      }
    } else if constexpr (detail::IsStdDeque<T>::value) {
      raw_uint(static_cast<std::uint64_t>(v.size()));
      for (const auto& e : v) field(e);
    } else if constexpr (detail::IsStdArray<T>::value) {
      for (const auto& e : v) field(e);
    } else {
      // Classes serialize themselves; io() is non-const by contract (the
      // Reader mutates), so the Writer casts the const away.
      const_cast<T&>(v).io(*this);
    }
  }

 private:
  template <class U>
  void raw_uint(U v) {
    static_assert(std::is_unsigned_v<U>);
    if constexpr (std::endian::native == std::endian::little) {
      // The wire format is little-endian, so on a little-endian host the
      // value's memory image is already the encoded form.
      buf_.append(reinterpret_cast<const char*>(&v), sizeof(U));
    } else {
      for (std::size_t i = 0; i < sizeof(U); ++i) {
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
      }
    }
  }

  std::string buf_;
};

/// Deserializing archive over a byte span. Any underflow or malformed
/// length poisons the archive (ok() turns false) and zero-fills every
/// subsequent field instead of reading out of bounds — the caller checks
/// ok() once at the end.
class Reader {
 public:
  static constexpr bool kIsReader = true;

  Reader(const char* data, std::size_t size)
      : pos_(reinterpret_cast<const unsigned char*>(data)),
        end_(pos_ + size) {}
  explicit Reader(const std::string& bytes) : Reader(bytes.data(),
                                                     bytes.size()) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return ok_ && pos_ == end_; }
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - pos_);
  }

  template <class... Ts>
  void operator()(Ts&... fields) {
    (field(fields), ...);
  }

  template <class T>
  void field(T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      std::uint8_t b = 0;
      raw_uint(b);
      v = b != 0;
    } else if constexpr (std::is_enum_v<T>) {
      std::make_unsigned_t<std::underlying_type_t<T>> u = 0;
      raw_uint(u);
      v = static_cast<T>(static_cast<std::underlying_type_t<T>>(u));
    } else if constexpr (std::is_integral_v<T>) {
      std::make_unsigned_t<T> u = 0;
      raw_uint(u);
      v = static_cast<T>(u);
    } else if constexpr (std::is_floating_point_v<T>) {
      detail::FloatBits<T> bits = 0;
      raw_uint(bits);
      v = std::bit_cast<T>(bits);
    } else if constexpr (std::is_same_v<T, std::string>) {
      const std::uint64_t n = length();
      v.assign(reinterpret_cast<const char*>(pos_),
               static_cast<std::size_t>(n));
      pos_ += n;
    } else if constexpr (detail::IsStdOptional<T>::value) {
      bool has = false;
      field(has);
      if (has) {
        v.emplace();
        field(*v);
      } else {
        v.reset();
      }
    } else if constexpr (std::is_same_v<T, std::vector<bool>>) {
      const std::uint64_t n = length();
      v.assign(static_cast<std::size_t>(n), false);
      for (std::uint64_t i = 0; i < n; ++i) {
        bool b = false;
        field(b);
        v[static_cast<std::size_t>(i)] = b;
      }
    } else if constexpr (detail::IsStdVector<T>::value) {
      using E = typename T::value_type;
      if constexpr (detail::kBulkCopyable<E>) {
        std::uint64_t n = 0;
        raw_uint(n);
        const std::uint64_t bytes = n * sizeof(E);
        if (!ok_ || bytes > remaining()) {
          ok_ = false;
          v.clear();
          return;
        }
        v.resize(static_cast<std::size_t>(n));
        std::memcpy(v.data(), pos_, static_cast<std::size_t>(bytes));
        pos_ += bytes;
      } else {
        const std::uint64_t n = length();
        v.clear();
        v.resize(static_cast<std::size_t>(n));
        for (auto& e : v) field(e);
      }
    } else if constexpr (detail::IsStdDeque<T>::value) {
      const std::uint64_t n = length();
      v.clear();
      v.resize(static_cast<std::size_t>(n));
      for (auto& e : v) field(e);
    } else if constexpr (detail::IsStdArray<T>::value) {
      for (auto& e : v) field(e);
    } else {
      v.io(*this);
    }
  }

 private:
  template <class U>
  void raw_uint(U& v) {
    static_assert(std::is_unsigned_v<U>);
    if (!ok_ || remaining() < sizeof(U)) {
      ok_ = false;
      v = 0;
      return;
    }
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, pos_, sizeof(U));
    } else {
      U out = 0;
      for (std::size_t i = 0; i < sizeof(U); ++i) {
        out |= static_cast<U>(static_cast<U>(pos_[i]) << (8 * i));
      }
      v = out;
    }
    pos_ += sizeof(U);
  }

  /// Container length with an overrun guard: a length can never exceed the
  /// bytes left (elements are at least one byte), so a corrupt length
  /// poisons the archive instead of driving a giant resize.
  std::uint64_t length() {
    std::uint64_t n = 0;
    raw_uint(n);
    if (n > remaining()) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  const unsigned char* pos_;
  const unsigned char* end_;
  bool ok_ = true;
};

}  // namespace rop::snap
